//! The four RDF OLAP operations of §2, as query-to-query rewritings.
//!
//! Each operation maps an extended analytical query to a new one:
//!
//! * **SLICE** — binds one dimension to a single value
//!   (Σ′ replaces that dimension's selector with a singleton);
//! * **DICE** — constrains several dimensions to value sets
//!   (Σ′ replaces their selectors);
//! * **DRILL-OUT** — removes dimensions from the classifier head
//!   (the body is unchanged — the removed variables become existential —
//!   and Σ′ drops their entries);
//! * **DRILL-IN** — promotes an existential classifier variable to a new
//!   dimension (Σ′ gains an unrestricted entry for it).
//!
//! Applying an operation only *rewrites the query* — Example 3's level.
//! Answering the rewritten query efficiently is [`crate::rewrite`]'s job.

use crate::error::CoreError;
use crate::extended::{ExtendedQuery, ValueSelector};
use rdfcube_rdf::Term;

/// An OLAP operation on an extended analytical query.
#[derive(Debug, Clone, PartialEq)]
pub enum OlapOp {
    /// Bind dimension `dim` to exactly `value`.
    Slice {
        /// Dimension name (a classifier head variable).
        dim: String,
        /// The single admitted value.
        value: Term,
    },
    /// Constrain each named dimension to a selector.
    Dice {
        /// `(dimension, admitted values)` pairs.
        constraints: Vec<(String, ValueSelector)>,
    },
    /// Remove the named dimensions from the classifier head.
    DrillOut {
        /// Dimension names to remove.
        dims: Vec<String>,
    },
    /// Promote an existential classifier variable to a dimension.
    DrillIn {
        /// The classifier body variable to promote.
        var: String,
    },
    /// **Extension** (classical OLAP roll-up, expressed in the paper's
    /// framework): coarsen dimension `dim` by following the analysis
    /// property `via` from each dimension value to its parent (e.g.
    /// `livesIn`-city rolled up `locatedIn`-country). The classifier gains
    /// the mapping triple and the head swaps the fine variable for the
    /// coarse one, so `Q_ROLL-UP` is itself a plain AnQ. Facts whose value
    /// has no `via` edge drop out (their coarser value is undefined);
    /// multi-valued mappings fan out, consistent with RDF semantics.
    RollUp {
        /// The dimension to coarsen.
        dim: String,
        /// The analysis property mapping fine values to coarse ones.
        via: String,
    },
}

impl OlapOp {
    /// Short operation name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            OlapOp::Slice { .. } => "SLICE",
            OlapOp::Dice { .. } => "DICE",
            OlapOp::DrillOut { .. } => "DRILL-OUT",
            OlapOp::DrillIn { .. } => "DRILL-IN",
            OlapOp::RollUp { .. } => "ROLL-UP",
        }
    }
}

/// Applies `op` to `eq`, producing the transformed extended query `Q_T`.
pub fn apply(eq: &ExtendedQuery, op: &OlapOp) -> Result<ExtendedQuery, CoreError> {
    match op {
        OlapOp::Slice { dim, value } => {
            dice(eq, &[(dim.clone(), ValueSelector::one(value.clone()))])
        }
        OlapOp::Dice { constraints } => dice(eq, constraints),
        OlapOp::DrillOut { dims } => drill_out(eq, dims),
        OlapOp::DrillIn { var } => drill_in(eq, var),
        OlapOp::RollUp { dim, via } => roll_up(eq, dim, via),
    }
}

/// Bare `apply` cannot build `Q_ROLL-UP`: encoding the mapping property
/// needs the instance dictionary, which only the session has. The
/// validation still runs so errors surface early.
fn roll_up(eq: &ExtendedQuery, dim: &str, _via: &str) -> Result<ExtendedQuery, CoreError> {
    let i = eq.query().dim_index(dim)?;
    if !eq.sigma().selector(i).is_all() {
        return Err(CoreError::InvalidOperation(format!(
            "cannot roll up dimension '{dim}' while it is restricted by Σ; \
             drill it out or widen the restriction first"
        )));
    }
    Err(CoreError::InvalidOperation(
        "ROLL-UP needs dictionary access; use OlapSession::transform (or \
         apply_roll_up_encoded) instead of bare apply()"
            .into(),
    ))
}

/// ROLL-UP with the mapping property pre-encoded in the target dictionary.
pub fn apply_roll_up_encoded(
    eq: &ExtendedQuery,
    dim: &str,
    via: rdfcube_rdf::TermId,
) -> Result<ExtendedQuery, CoreError> {
    use rdfcube_engine::{PatternTerm, QueryPattern};
    let q = eq.query();
    let i = q.dim_index(dim)?;
    if !eq.sigma().selector(i).is_all() {
        return Err(CoreError::InvalidOperation(format!(
            "cannot roll up dimension '{dim}' while it is restricted by Σ"
        )));
    }
    let mut classifier = q.classifier().clone();
    let fine = q.dim_vars()[i];
    let coarse_name = format!("{dim}_up");
    let coarse = if classifier.vars().id(&coarse_name).is_none() {
        classifier.var(&coarse_name)
    } else {
        classifier.vars_mut().fresh(&coarse_name)
    };
    classifier.push_pattern(QueryPattern::new(
        PatternTerm::Var(fine),
        PatternTerm::Const(via),
        PatternTerm::Var(coarse),
    ));
    let mut head = classifier.head().to_vec();
    head[i + 1] = coarse;
    classifier.set_head(head);
    let new_q = q.with_classifier(classifier)?;
    // Σ: the rolled-up dimension becomes unrestricted over coarse values;
    // all other selectors carry over positionally.
    let mut sigma = eq.sigma().clone();
    sigma.set(i, crate::extended::ValueSelector::All);
    ExtendedQuery::with_sigma(new_q, sigma)
}

fn dice(
    eq: &ExtendedQuery,
    constraints: &[(String, ValueSelector)],
) -> Result<ExtendedQuery, CoreError> {
    if constraints.is_empty() {
        return Err(CoreError::InvalidOperation(
            "DICE requires at least one constraint".into(),
        ));
    }
    let mut sigma = eq.sigma().clone();
    for (dim, selector) in constraints {
        let i = eq.query().dim_index(dim)?;
        sigma.set(i, selector.clone());
    }
    ExtendedQuery::with_sigma(eq.query().clone(), sigma)
}

/// Resolves the named dimensions to sorted, deduplicated indices.
pub(crate) fn resolve_dims(eq: &ExtendedQuery, dims: &[String]) -> Result<Vec<usize>, CoreError> {
    if dims.is_empty() {
        return Err(CoreError::InvalidOperation("no dimensions named".into()));
    }
    let mut indices = Vec::with_capacity(dims.len());
    for d in dims {
        indices.push(eq.query().dim_index(d)?);
    }
    indices.sort_unstable();
    indices.dedup();
    Ok(indices)
}

fn drill_out(eq: &ExtendedQuery, dims: &[String]) -> Result<ExtendedQuery, CoreError> {
    let removed = resolve_dims(eq, dims)?;
    if removed.len() == eq.query().n_dims() && removed.len() == dims.len() {
        // Removing every dimension yields the 0-dimensional (grand total)
        // cube — legal, head keeps only the fact variable.
    }
    let q = eq.query();
    let mut classifier = q.classifier().clone();
    let mut head = vec![q.root()];
    for (i, &d) in q.dim_vars().iter().enumerate() {
        if !removed.contains(&i) {
            head.push(d);
        }
    }
    classifier.set_head(head);
    let new_q = q.with_classifier(classifier)?;
    ExtendedQuery::with_sigma(new_q, eq.sigma().without_dims(&removed))
}

fn drill_in(eq: &ExtendedQuery, var: &str) -> Result<ExtendedQuery, CoreError> {
    let q = eq.query();
    let classifier = q.classifier();
    let vid = classifier
        .vars()
        .id(var)
        .ok_or_else(|| CoreError::UnknownVariable(var.to_string()))?;
    if classifier.head().contains(&vid) {
        return Err(CoreError::InvalidOperation(format!(
            "?{var} is already a dimension of the classifier"
        )));
    }
    if !classifier.body().iter().any(|p| p.mentions(vid)) {
        return Err(CoreError::UnknownVariable(format!(
            "?{var} does not occur in the classifier body"
        )));
    }
    let mut new_classifier = classifier.clone();
    let mut head = classifier.head().to_vec();
    head.push(vid);
    new_classifier.set_head(head);
    let new_q = q.with_classifier(new_classifier)?;
    ExtendedQuery::with_sigma(new_q, eq.sigma().with_new_dim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anq::AnalyticalQuery;
    use rdfcube_engine::AggFunc;
    use rdfcube_rdf::Dictionary;

    fn example_1_extended(dict: &mut Dictionary) -> ExtendedQuery {
        ExtendedQuery::from_query(
            AnalyticalQuery::parse(
                "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
                "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite",
                AggFunc::Count,
                dict,
            )
            .unwrap(),
        )
    }

    #[test]
    fn example_3_slice_on_dage_35() {
        let mut dict = Dictionary::new();
        let eq = example_1_extended(&mut dict);
        let sliced = apply(
            &eq,
            &OlapOp::Slice {
                dim: "dage".into(),
                value: Term::integer(35),
            },
        )
        .unwrap();
        assert_eq!(
            sliced.sigma().selector(0),
            &ValueSelector::OneOf(vec![Term::integer(35)])
        );
        assert!(sliced.sigma().selector(1).is_all());
        // Classifier shape unchanged.
        assert_eq!(sliced.query().dim_names(), vec!["dage", "dcity"]);
    }

    #[test]
    fn example_3_dice_on_both_dimensions() {
        // {28} for dage, {Madrid, Kyoto} for dcity.
        let mut dict = Dictionary::new();
        let eq = example_1_extended(&mut dict);
        let diced = apply(
            &eq,
            &OlapOp::Dice {
                constraints: vec![
                    ("dage".into(), ValueSelector::one(Term::integer(28))),
                    (
                        "dcity".into(),
                        ValueSelector::OneOf(vec![Term::literal("Madrid"), Term::literal("Kyoto")]),
                    ),
                ],
            },
        )
        .unwrap();
        assert!(!diced.sigma().selector(0).is_all());
        assert!(!diced.sigma().selector(1).is_all());
    }

    #[test]
    fn example_3_drill_out_then_drill_in_restores_shape() {
        let mut dict = Dictionary::new();
        let eq = example_1_extended(&mut dict);
        let out = apply(
            &eq,
            &OlapOp::DrillOut {
                dims: vec!["dage".into()],
            },
        )
        .unwrap();
        assert_eq!(out.query().dim_names(), vec!["dcity"]);
        // body(c') ≡ body(c): the age pattern is still there, existential.
        assert_eq!(out.query().classifier().body().len(), 3);
        assert!(out
            .query()
            .classifier()
            .existential_vars()
            .iter()
            .any(|&v| out.query().classifier().vars().name(v) == "dage"));

        // DRILL-IN on dage restores Example 1's query shape.
        let back = apply(&out, &OlapOp::DrillIn { var: "dage".into() }).unwrap();
        assert_eq!(back.query().dim_names(), vec!["dcity", "dage"]);
        assert_eq!(back.sigma().len(), 2);
    }

    #[test]
    fn drill_out_everything_gives_grand_total_query() {
        let mut dict = Dictionary::new();
        let eq = example_1_extended(&mut dict);
        let out = apply(
            &eq,
            &OlapOp::DrillOut {
                dims: vec!["dage".into(), "dcity".into()],
            },
        )
        .unwrap();
        assert_eq!(out.query().n_dims(), 0);
    }

    #[test]
    fn unknown_dimension_and_variable_errors() {
        let mut dict = Dictionary::new();
        let eq = example_1_extended(&mut dict);
        assert!(matches!(
            apply(
                &eq,
                &OlapOp::Slice {
                    dim: "nope".into(),
                    value: Term::integer(1)
                }
            ),
            Err(CoreError::UnknownDimension(_))
        ));
        assert!(matches!(
            apply(
                &eq,
                &OlapOp::DrillOut {
                    dims: vec!["nope".into()]
                }
            ),
            Err(CoreError::UnknownDimension(_))
        ));
        assert!(matches!(
            apply(&eq, &OlapOp::DrillIn { var: "nope".into() }),
            Err(CoreError::UnknownVariable(_))
        ));
    }

    #[test]
    fn drill_in_on_existing_dimension_is_invalid() {
        let mut dict = Dictionary::new();
        let eq = example_1_extended(&mut dict);
        assert!(matches!(
            apply(&eq, &OlapOp::DrillIn { var: "dage".into() }),
            Err(CoreError::InvalidOperation(_))
        ));
    }

    #[test]
    fn drill_in_promotes_measure_path_variable() {
        // ?p (the post) is existential in the classifier of this variant.
        let mut dict = Dictionary::new();
        let q = AnalyticalQuery::parse(
            "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x wrotePost ?p",
            "m(?x, ?v) :- ?x wrotePost ?v",
            AggFunc::Count,
            &mut dict,
        )
        .unwrap();
        let eq = ExtendedQuery::from_query(q);
        let drilled = apply(&eq, &OlapOp::DrillIn { var: "p".into() }).unwrap();
        assert_eq!(drilled.query().dim_names(), vec!["dage", "p"]);
    }

    #[test]
    fn empty_dice_rejected() {
        let mut dict = Dictionary::new();
        let eq = example_1_extended(&mut dict);
        assert!(apply(
            &eq,
            &OlapOp::Dice {
                constraints: vec![]
            }
        )
        .is_err());
    }

    #[test]
    fn op_names() {
        assert_eq!(OlapOp::DrillIn { var: "v".into() }.name(), "DRILL-IN");
        assert_eq!(OlapOp::DrillOut { dims: vec![] }.name(), "DRILL-OUT");
        assert_eq!(
            OlapOp::Slice {
                dim: "d".into(),
                value: Term::integer(1)
            }
            .name(),
            "SLICE"
        );
        assert_eq!(
            OlapOp::Dice {
                constraints: vec![]
            }
            .name(),
            "DICE"
        );
    }
}
