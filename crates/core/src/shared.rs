//! The concurrent query plane: [`SharedSession`].
//!
//! An [`OlapSession`] is the *mutation plane* — it owns `&mut` access to
//! the instance and catalog, so exactly one client at a time can use it.
//! But the paper's cubes are read-mostly by construction: once an
//! analytical schema is instantiated and its first cubes materialized,
//! the dominant workload is many clients posing analytical queries
//! against the same catalog. [`SharedSession`] serves that workload:
//!
//! * the instance and every cube payload live behind `Arc`s — converting
//!   a session ([`OlapSession::into_shared`]) copies **no** data, and
//!   neither does handing the shared session to N threads;
//! * every serving method takes `&self`, so `&SharedSession` (or an
//!   `Arc<SharedSession>`) can be queried from any number of threads
//!   concurrently;
//! * the catalog sits behind a single [`RwLock`]: planning, duplicate
//!   detection and snapshotting happen under a read lock (shared), while
//!   materializing a new cube, rehydrating an evicted one or refreshing a
//!   stale one takes the write lock briefly. The expensive work — BGP
//!   evaluation, derivation, aggregation — always runs **outside** any
//!   lock, against [`CubeSnapshot`]s;
//! * recency/benefit bookkeeping (`touch`, hit/miss counters) is atomic
//!   (see [`crate::catalog`]), so the hot read path never blocks on it.
//!
//! The dictionary is frozen during a shared epoch: queries must be parsed
//! against the instance *before* [`OlapSession::into_shared`] (or their
//! constants must already be interned). Inserting triples, parsing
//! queries with fresh constants, and ROLL-UP over a not-yet-interned
//! mapping property all belong to the mutation plane — round-trip with
//! [`SharedSession::into_session`], mutate, and convert back. Cubes
//! materialized before the mutation keep their watermarks, so the next
//! shared epoch transparently refreshes whatever went stale.

use crate::catalog::{CatalogCounters, CubeCatalog, CubeSnapshot};
use crate::cost::ExplainedStrategy;
use crate::error::CoreError;
use crate::extended::ExtendedQuery;
use crate::olap::{apply, apply_roll_up_encoded, OlapOp};
use crate::rewrite;
use crate::session::{self, CubeHandle, OlapSession, Strategy};
use crate::signature::ViewSignature;
use rdfcube_rdf::Graph;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A `Send + Sync` OLAP serving plane over one instance and one cube
/// catalog. Obtained from [`OlapSession::into_shared`]; all serving
/// methods take `&self`. See the [module docs](self) for the
/// architecture and the thread-safety contract.
#[derive(Debug)]
pub struct SharedSession {
    instance: Arc<Graph>,
    catalog: RwLock<CubeCatalog>,
}

impl SharedSession {
    pub(crate) fn from_parts(instance: Arc<Graph>, catalog: CubeCatalog) -> Self {
        SharedSession {
            instance,
            catalog: RwLock::new(catalog),
        }
    }

    /// Converts back into the single-owner mutation plane. No data is
    /// copied; outstanding [`CubeSnapshot`]s stay readable (the first
    /// mutation clones the instance copy-on-write instead of racing
    /// them).
    pub fn into_session(self) -> OlapSession {
        let catalog = self
            .catalog
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        OlapSession::from_parts(self.instance, catalog)
    }

    /// Catalog read access. A poisoned lock is recovered rather than
    /// propagated: the catalog's accounting is kept structurally valid at
    /// every early-return point, so a panicking reader/writer leaves at
    /// worst a recomputable payload gap, never a torn answer.
    fn read(&self) -> RwLockReadGuard<'_, CubeCatalog> {
        self.catalog.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, CubeCatalog> {
        self.catalog.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// The shared AnS instance.
    pub fn instance(&self) -> &Graph {
        &self.instance
    }

    /// Number of subject-hash shards in the shared instance (chosen at
    /// session construction, [`OlapSession::with_shards`]). The shards
    /// travel behind the instance's `Arc` like everything else — each
    /// serving thread's BGP steps can fan out one worker per shard without
    /// any copying or coordination beyond the scoped spawn.
    pub fn shard_count(&self) -> usize {
        self.instance.shard_count()
    }

    /// Number of materialized cubes (including evicted entries).
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// True if no cube is materialized.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Cumulative catalog counters (hits, misses, evictions,
    /// rehydrations, refreshes).
    pub fn counters(&self) -> CatalogCounters {
        self.read().counters()
    }

    /// A combined statistics snapshot: the counters plus the query log's
    /// per-[`ViewKey`](crate::signature::ViewKey) access frequencies (see
    /// [`CubeCatalog::stats`](crate::catalog::CubeCatalog::stats)).
    pub fn stats(&self) -> crate::catalog::CatalogStats {
        self.read().stats()
    }

    /// A point-in-time snapshot of this session's metrics registry —
    /// the same names and values [`OlapSession::metrics_snapshot`]
    /// reports, so both planes can be scraped uniformly.
    pub fn metrics_snapshot(&self) -> rdfcube_obs::Snapshot {
        self.read().metrics_snapshot()
    }

    /// Bytes of materialized payload currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.read().resident_bytes()
    }

    /// The configured payload budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.read().budget()
    }

    /// The extended query of `handle`, or `None` for a foreign handle.
    /// Available whether or not the payload is resident.
    pub fn try_query(&self, handle: CubeHandle) -> Option<Arc<ExtendedQuery>> {
        self.read().get_entry(handle.0).map(|e| e.query_arc())
    }

    /// An owned snapshot of the cube behind `handle` — refreshing or
    /// rehydrating it first if it is stale or evicted. The snapshot keeps
    /// the payload alive independently of later evictions, so it can be
    /// read for as long as needed without holding any lock.
    pub fn snapshot(&self, handle: CubeHandle) -> Result<CubeSnapshot, CoreError> {
        self.snapshot_inner(handle).map(|(snap, _)| snap)
    }

    /// [`Self::snapshot`] plus whether a recompute (rehydration or
    /// refresh) happened on the way.
    fn snapshot_inner(&self, handle: CubeHandle) -> Result<(CubeSnapshot, bool), CoreError> {
        {
            let cat = self.read();
            let e = cat
                .get_entry(handle.0)
                .ok_or(CoreError::UnknownHandle(handle.0))?;
            if e.is_resident() && e.is_fresh(&self.instance) {
                cat.touch(handle.0);
                let snap = cat
                    .snapshot(handle.0)
                    .ok_or(CoreError::CubeNotResident(handle.0))?;
                return Ok((snap, false));
            }
        }
        // Evicted or stale: recompute under the write lock. Racing
        // threads may all observe the miss and queue here; the first one
        // recomputes and the rest see a fresh entry (no-op).
        let mut cat = self.write();
        let recomputed = cat.ensure_resident(handle.0, &self.instance)?;
        cat.touch(handle.0);
        let snap = cat
            .snapshot(handle.0)
            .ok_or(CoreError::CubeNotResident(handle.0))?;
        Ok((snap, recomputed))
    }

    /// Plans `eq` without executing or materializing anything (the
    /// concurrent counterpart of [`OlapSession::explain_query`]).
    pub fn explain_query(&self, eq: &ExtendedQuery) -> ExplainedStrategy {
        let sig = ViewSignature::of(eq.query());
        session::plan_in(&self.read(), &self.instance, eq, &sig).1
    }

    /// The linear-rescan planner baseline (see
    /// [`OlapSession::explain_query_linear`]); chooses identically to
    /// [`Self::explain_query`] by construction.
    pub fn explain_query_linear(&self, target: &ExtendedQuery) -> ExplainedStrategy {
        session::plan_linear(&self.read(), &self.instance, target).1
    }

    /// Answers an arbitrary extended query — the concurrent counterpart
    /// of [`OlapSession::answer_query`], with the identical
    /// dedup/plan/derive semantics. Returns the handle of the (existing
    /// or newly materialized) cube; read its cells with
    /// [`Self::snapshot`].
    ///
    /// Locking: duplicate detection, planning and source snapshotting run
    /// under the read lock; derivation and from-scratch evaluation run
    /// under **no** lock; the write lock is taken only to materialize the
    /// result (and to refresh a stale/evicted source first, when the
    /// planner picked one).
    pub fn answer_query(
        &self,
        eq: ExtendedQuery,
    ) -> Result<(CubeHandle, ExplainedStrategy), CoreError> {
        let start = std::time::Instant::now();
        let plan_span = rdfcube_obs::span("plan");
        let sig = ViewSignature::of(eq.query());
        // Duplicate fast path: served entirely under the read lock when
        // the entry is fresh and resident (the common case under steady
        // traffic). The query log sits behind its own mutex, so recording
        // works under the read lock too.
        let stale_duplicate = {
            let cat = self.read();
            match session::find_duplicate(&cat, &sig, &eq) {
                Some(idx) => {
                    let e = cat.entry(idx);
                    if e.is_resident() && e.is_fresh(&self.instance) {
                        drop(plan_span);
                        let sp = rdfcube_obs::span("duplicate");
                        cat.touch(idx);
                        cat.record_hit();
                        let explained =
                            session::duplicate_explained(&cat, idx, &eq, &self.instance, false);
                        drop(sp);
                        session::record_strategy_span(&explained);
                        cat.record_query(&eq, &sig, &explained, start.elapsed().as_nanos() as u64);
                        return Ok((CubeHandle(idx), explained));
                    }
                    Some(idx)
                }
                None => None,
            }
        };
        if let Some(idx) = stale_duplicate {
            drop(plan_span);
            let sp = rdfcube_obs::span("duplicate");
            let mut cat = self.write();
            let rehydrated = cat.ensure_resident(idx, &self.instance)?;
            cat.touch(idx);
            cat.record_hit();
            let explained =
                session::duplicate_explained(&cat, idx, &eq, &self.instance, rehydrated);
            if sp.active() {
                sp.attr("rehydrated", u64::from(rehydrated));
            }
            drop(sp);
            session::record_strategy_span(&explained);
            cat.record_query(&eq, &sig, &explained, start.elapsed().as_nanos() as u64);
            return Ok((CubeHandle(idx), explained));
        }

        // Plan under the read lock and snapshot the chosen source if it
        // is servable as-is; stale/evicted sources are refreshed under
        // the write lock below.
        let (planned, mut explained) = {
            let cat = self.read();
            let (pick, explained) = session::plan_in(&cat, &self.instance, &eq, &sig);
            let planned = pick.map(|(idx, d)| {
                let e = cat.entry(idx);
                let snap = if e.is_resident() && e.is_fresh(&self.instance) {
                    cat.snapshot(idx)
                } else {
                    None
                };
                (idx, d, snap)
            });
            (planned, explained)
        };
        if plan_span.active() {
            plan_span.attr("candidates", explained.candidates as u64);
        }
        drop(plan_span);
        session::record_strategy_span(&explained);

        let (ans, pres) = match planned {
            Some((source_idx, d, snap)) => {
                let sp = rdfcube_obs::span("derive");
                let (snap, rehydrated) = match snap {
                    Some(snap) => (snap, false),
                    None => {
                        let mut cat = self.write();
                        let recomputed = cat.ensure_resident(source_idx, &self.instance)?;
                        let snap = cat
                            .snapshot(source_idx)
                            .ok_or(CoreError::CubeNotResident(source_idx))?;
                        (snap, recomputed)
                    }
                };
                explained.rehydrated = rehydrated;
                let source_cells = snap.answer().len() as u64;
                let derived = session::derive_with(
                    &self.instance,
                    snap.query(),
                    snap.answer(),
                    snap.pres(),
                    &eq,
                    &d,
                )?;
                if sp.active() {
                    let strategy = explained.strategy;
                    sp.detail(move || strategy.to_string());
                    sp.rows(source_cells, derived.0.len() as u64);
                    sp.attr("rehydrated", u64::from(rehydrated));
                }
                drop(sp);
                // Credit the source only once the derivation succeeded,
                // exactly as the mutation plane does.
                let cat = self.read();
                cat.touch(source_idx);
                cat.record_hit();
                derived
            }
            None => {
                let sp = rdfcube_obs::span("from_scratch");
                let computed = rewrite::from_scratch_with_pres(&eq, &self.instance)?;
                if sp.active() {
                    sp.rows(computed.1.len() as u64, computed.0.len() as u64);
                }
                drop(sp);
                self.read().record_miss();
                computed
            }
        };

        // Materialize under the write lock — re-probing for a duplicate a
        // racing thread may have registered while we were computing, so
        // concurrent identical queries converge on one entry instead of
        // inserting N copies.
        let mut cat = self.write();
        cat.record_query(&eq, &sig, &explained, start.elapsed().as_nanos() as u64);
        if let Some(idx) = session::find_duplicate(&cat, &sig, &eq) {
            cat.ensure_resident(idx, &self.instance)?;
            cat.touch(idx);
            return Ok((CubeHandle(idx), explained));
        }
        let sp = rdfcube_obs::span("materialize");
        let watermark = self.instance.len();
        if sp.active() {
            sp.rows(ans.len() as u64, ans.len() as u64);
            sp.bytes((ans.approx_bytes() + pres.approx_bytes()) as u64);
        }
        let idx = cat.insert_signed(eq, sig, ans, pres, watermark);
        drop(sp);
        Ok((CubeHandle(idx), explained))
    }

    /// Like [`Self::answer_query`], but records a structured
    /// [`QueryTrace`](rdfcube_obs::QueryTrace) of the evaluation —
    /// the concurrent counterpart of [`OlapSession::answer_traced`].
    ///
    /// Tracing is thread-local: it adds no locking and does not change
    /// the lock structure of the underlying evaluation. Concurrent
    /// untraced queries on other threads are unaffected.
    pub fn answer_traced(
        &self,
        eq: ExtendedQuery,
    ) -> Result<(CubeHandle, ExplainedStrategy, rdfcube_obs::QueryTrace), CoreError> {
        let began = rdfcube_obs::trace_begin("answer_query");
        let result = self.answer_query(eq);
        let trace = if began {
            rdfcube_obs::sink().traces.inc();
            rdfcube_obs::trace_end().unwrap_or_default()
        } else {
            rdfcube_obs::QueryTrace::default()
        };
        let (handle, explained) = result?;
        Ok((handle, explained, trace))
    }

    /// Re-runs workload-driven view selection (see [`crate::advisor`])
    /// when the query log has grown by at least `min_new_queries` since
    /// the last run; returns `None` when it has not. Intended to be
    /// called periodically from any serving thread — the staleness probe
    /// is a read-lock peek, and only an actually-stale log pays for the
    /// write lock (selection and materialization run under it, briefly
    /// blocking concurrent queries, like any other materialization).
    pub fn advise_if_stale(
        &self,
        min_new_queries: u64,
    ) -> Result<Option<crate::advisor::AdvisorReport>, CoreError> {
        let threshold = min_new_queries.max(1);
        {
            let cat = self.read();
            if cat.log_total().saturating_sub(cat.advised_log_total()) < threshold {
                return Ok(None);
            }
        }
        let mut cat = self.write();
        // Re-check: a racing thread may have advised while we waited.
        if cat.log_total().saturating_sub(cat.advised_log_total()) < threshold {
            return Ok(None);
        }
        crate::advisor::advise_catalog(&mut cat, &self.instance).map(Some)
    }

    /// Applies an OLAP operation to a materialized cube — the concurrent
    /// counterpart of [`OlapSession::transform`].
    ///
    /// ROLL-UP is served only when its mapping property is already
    /// interned in the (frozen) dictionary; otherwise it belongs to the
    /// mutation plane.
    pub fn transform(
        &self,
        handle: CubeHandle,
        op: &OlapOp,
    ) -> Result<(CubeHandle, ExplainedStrategy), CoreError> {
        if let OlapOp::RollUp { dim, via } = op {
            return self.roll_up(handle, dim, via);
        }
        let source_eq = self
            .try_query(handle)
            .ok_or(CoreError::UnknownHandle(handle.0))?;
        let new_eq = apply(&source_eq, op)?;
        self.answer_query(new_eq)
    }

    fn roll_up(
        &self,
        handle: CubeHandle,
        dim: &str,
        via: &str,
    ) -> Result<(CubeHandle, ExplainedStrategy), CoreError> {
        let start = std::time::Instant::now();
        // The dictionary is frozen during a shared epoch, so the mapping
        // property must already be interned (any property that actually
        // occurs in the instance is).
        let via_id = self.instance.dict().iri_id(via).ok_or_else(|| {
            CoreError::InvalidOperation(format!(
                "roll-up mapping property <{via}> is not in the shared instance's \
                 dictionary; apply this roll-up through the mutation plane \
                 (OlapSession::transform)"
            ))
        })?;
        let source_eq = self
            .try_query(handle)
            .ok_or(CoreError::UnknownHandle(handle.0))?;
        let new_eq = apply_roll_up_encoded(&source_eq, dim, via_id)?;
        let dim_idx = source_eq.query().dim_index(dim)?;
        let coarse_name = new_eq.query().dim_names()[dim_idx].to_string();
        let (snap, rehydrated) = self.snapshot_inner(handle)?;
        let explained = ExplainedStrategy {
            strategy: Strategy::RollUpComposition,
            source: Some(handle),
            estimated_cost: rewrite::roll_up_cost(snap.pres().len()),
            scratch_cost: rewrite::scratch_cost(&new_eq, &self.instance),
            candidates: 1,
            catalog_hit: true,
            rehydrated,
        };
        let (ans, pres) =
            rewrite::roll_up_from_pres(snap.pres(), dim_idx, via_id, &coarse_name, &self.instance)?;
        let mut cat = self.write();
        cat.record_hit();
        let new_sig = ViewSignature::of(new_eq.query());
        cat.record_query(
            &new_eq,
            &new_sig,
            &explained,
            start.elapsed().as_nanos() as u64,
        );
        let watermark = self.instance.len();
        let idx = cat.insert_signed(new_eq, new_sig, ans, pres, watermark);
        Ok((CubeHandle(idx), explained))
    }
}

// The whole point of the type: compile-time proof it can be shared.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedSession>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_engine::AggFunc;
    use rdfcube_rdf::parse_turtle;

    fn session() -> OlapSession {
        let instance = parse_turtle(
            "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user4> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user1> <wrotePost> <p1>, <p2>, <p3> .
             <p1> <postedOn> <s1> . <p2> <postedOn> <s1> . <p3> <postedOn> <s2> .
             <user3> <wrotePost> <p4> . <p4> <postedOn> <s2> .
             <user4> <wrotePost> <p5> . <p5> <postedOn> <s3> .",
        )
        .unwrap();
        OlapSession::new(instance)
    }

    fn example_1(s: &mut OlapSession) -> ExtendedQuery {
        s.parse_query(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            "m(?x, ?v) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?v",
            AggFunc::Count,
        )
        .unwrap()
    }

    #[test]
    fn shared_answers_match_the_mutation_plane() {
        let mut serial = session();
        let eq = example_1(&mut serial);
        let (hs, _) = serial.answer_query(eq.clone()).unwrap();

        let mut s = session();
        let eq2 = example_1(&mut s);
        let shared = s.into_shared();
        let (h, explained) = shared.answer_query(eq2).unwrap();
        assert_eq!(explained.strategy, Strategy::FromScratch);
        let snap = shared.snapshot(h).unwrap();
        assert!(snap.answer().same_cells(serial.answer(hs)));
        // The duplicate fast path reuses the entry from plain `&self`.
        let eq3 = shared.try_query(h).unwrap();
        let (h2, ex2) = shared.answer_query((*eq3).clone()).unwrap();
        assert_eq!(h2, h);
        assert!(ex2.catalog_hit);
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn many_threads_share_one_session() {
        let mut s = session();
        let eq = example_1(&mut s);
        let shared = s.into_shared();
        let (h0, _) = shared.answer_query(eq.clone()).unwrap();
        let expect = shared.snapshot(h0).unwrap();

        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = &shared;
                let eq = eq.clone();
                let expect = expect.clone();
                scope.spawn(move || {
                    for _ in 0..8 {
                        let (h, _) = shared.answer_query(eq.clone()).unwrap();
                        let snap = shared.snapshot(h).unwrap();
                        assert!(snap.answer().same_cells(expect.answer()));
                    }
                });
            }
        });
        assert_eq!(shared.len(), 1, "duplicates converged on one entry");
        assert!(shared.counters().hits >= 32);
    }

    #[test]
    fn round_trip_through_the_mutation_plane_refreshes() {
        let mut s = session();
        let eq = example_1(&mut s);
        let shared = s.into_shared();
        let (h, _) = shared.answer_query(eq.clone()).unwrap();
        let before = shared.snapshot(h).unwrap();

        // Mutate: user3 writes two more posts.
        let mut s = shared.into_session();
        use rdfcube_rdf::Term;
        let added = s.insert_triples([
            (Term::iri("user3"), Term::iri("wrotePost"), Term::iri("p9")),
            (Term::iri("p9"), Term::iri("postedOn"), Term::iri("s1")),
            (Term::iri("user3"), Term::iri("wrotePost"), Term::iri("p10")),
            (Term::iri("p10"), Term::iri("postedOn"), Term::iri("s1")),
        ]);
        assert_eq!(added, 4);
        let shared = s.into_shared();

        // The old snapshot is untouched; the refreshed cube reflects the
        // new data.
        let (h2, _) = shared.answer_query(eq).unwrap();
        assert_eq!(h2, h);
        let after = shared.snapshot(h2).unwrap();
        assert!(!after.answer().same_cells(before.answer()));
        assert!(shared.counters().refreshes >= 1);
        let scratch = after.query().answer(shared.instance()).unwrap();
        assert!(after.answer().same_cells(&scratch));
    }

    #[test]
    fn foreign_handles_are_typed_errors() {
        let mut s = session();
        let _ = example_1(&mut s);
        let shared = s.into_shared();
        let bogus = CubeHandle(7);
        assert_eq!(
            shared.snapshot(bogus).unwrap_err(),
            CoreError::UnknownHandle(7)
        );
        assert!(shared.try_query(bogus).is_none());
        assert_eq!(
            shared
                .transform(bogus, &OlapOp::DrillOut { dims: vec![] })
                .unwrap_err(),
            CoreError::UnknownHandle(7)
        );
    }
}
