//! Cube answers — the answer set of an analytical query (Definition 1).
//!
//! `ans(Q, I)` is the set of tuples `⟨d₁…dₙ, ⊕(qʲ(I))⟩`: one cell per
//! distinct dimension vector appearing in the classifier answer, holding the
//! aggregate of the *bag union* of the measure values of every fact with
//! those dimension values. Facts whose measure bag is empty contribute no
//! cell (the aggregated measure is undefined).

use crate::anq::AnalyticalQuery;
use crate::error::CoreError;
use rdfcube_engine::{evaluate, group_aggregate, AggFunc, AggValue, Relation, Semantics, VarId};
use rdfcube_rdf::{Dictionary, Graph, TermId};

/// The materialized answer of an analytical query: an n-dimensional cube.
#[derive(Debug, Clone)]
pub struct Cube {
    dim_names: Vec<String>,
    agg: AggFunc,
    /// `(dimension vector, aggregate)` pairs, sorted by dimension vector.
    cells: Vec<(Vec<TermId>, AggValue)>,
}

impl Cube {
    /// Builds a cube from raw parts. `cells` are sorted internally.
    pub fn from_cells(
        dim_names: Vec<String>,
        agg: AggFunc,
        mut cells: Vec<(Vec<TermId>, AggValue)>,
    ) -> Self {
        cells.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Cube {
            dim_names,
            agg,
            cells,
        }
    }

    /// The dimension names, in classifier-head order.
    pub fn dim_names(&self) -> &[String] {
        &self.dim_names
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.dim_names.len()
    }

    /// The aggregation function that produced the cells.
    pub fn agg(&self) -> AggFunc {
        self.agg
    }

    /// The cells, sorted by dimension vector.
    pub fn cells(&self) -> &[(Vec<TermId>, AggValue)] {
        &self.cells
    }

    /// The same cube under different (user-facing) dimension names — used
    /// when a cube derived from another query's materialization is stored
    /// under the new query's own naming.
    pub fn with_dim_names(mut self, dim_names: Vec<String>) -> Self {
        debug_assert_eq!(dim_names.len(), self.dim_names.len());
        self.dim_names = dim_names;
        self
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the cube has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Approximate memory footprint in bytes, mirroring
    /// [`crate::PartialResult::approx_bytes`]: per cell, the dimension key
    /// vector (header + `n_dims` term ids) plus the aggregate value. The
    /// cube catalog charges both `ans(Q)` and `pres(Q)` against the
    /// session's memory budget with these estimates.
    pub fn approx_bytes(&self) -> usize {
        let per_cell = std::mem::size_of::<(Vec<TermId>, AggValue)>()
            + self.n_dims() * std::mem::size_of::<TermId>();
        std::mem::size_of::<Self>() + self.cells.len() * per_cell
    }

    /// The aggregate for an exact dimension vector, if that cell exists.
    pub fn get(&self, key: &[TermId]) -> Option<&AggValue> {
        self.cells
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| &self.cells[i].1)
    }

    /// Exact equality of cells (integer/term aggregates compare exactly;
    /// float aggregates must be bit-identical — our aggregation folds floats
    /// in sorted order precisely so that this holds across strategies).
    pub fn same_cells(&self, other: &Cube) -> bool {
        self.cells == other.cells
    }

    /// ε-tolerant comparison for floating-point workloads.
    pub fn approx_same(&self, other: &Cube, eps: f64) -> bool {
        self.cells.len() == other.cells.len()
            && self
                .cells
                .iter()
                .zip(&other.cells)
                .all(|((ka, va), (kb, vb))| ka == kb && va.approx_eq(vb, eps))
    }

    /// Exports the cube as CSV (RFC-4180-style quoting), one row per cell,
    /// header = dimension names + the aggregate column.
    pub fn to_csv(&self, dict: &Dictionary) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .dim_names
            .iter()
            .map(|d| field(d))
            .chain(std::iter::once(field(&format!("{}_v", self.agg))))
            .collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for (key, value) in &self.cells {
            let row: Vec<String> = key
                .iter()
                .map(|&id| {
                    field(
                        &dict
                            .get(id)
                            .map_or_else(|| id.to_string(), |t| t.display_compact()),
                    )
                })
                .chain(std::iter::once(field(&value.display(dict))))
                .collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the cube as an aligned text table, decoding terms against
    /// `dict` (for examples and reports).
    pub fn to_table(&self, dict: &Dictionary) -> String {
        let mut header: Vec<String> = self.dim_names.clone();
        header.push(format!("{}(v)", self.agg));
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|(key, value)| {
                let mut row: Vec<String> = key
                    .iter()
                    .map(|&id| {
                        dict.get(id)
                            .map_or_else(|| id.to_string(), |t| t.display_compact())
                    })
                    .collect();
                row.push(value.display(dict));
                row
            })
            .collect();
        render_table(&header, &rows)
    }
}

fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    fn emit(out: &mut String, cells: &[String], widths: &[usize]) {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str("| ");
            out.push_str(cell);
            out.push_str(&" ".repeat(widths[i] - cell.len() + 1));
        }
        out.push_str("|\n");
    }
    let mut out = String::new();
    emit(&mut out, header, &widths);
    for w in widths.iter().take(n_cols) {
        out.push('|');
        out.push_str(&"-".repeat(w + 2));
    }
    out.push_str("|\n");
    for row in rows {
        emit(&mut out, row, &widths);
    }
    out
}

/// Evaluates `ans(Q, I)` directly over the instance (Definition 1): the
/// classifier under set semantics, the measure under bag semantics, joined
/// on the fact variable and aggregated per dimension vector (sort-based γ).
///
/// This is the reference ("from scratch") evaluation every rewriting in
/// [`crate::rewrite`] is benchmarked and tested against, and the subject of
/// benchmark E9.
pub fn answer(q: &AnalyticalQuery, instance: &Graph) -> Result<Cube, CoreError> {
    let c_rel = evaluate(instance, q.classifier(), Semantics::Set)?;
    answer_with_classifier_relation(q, c_rel, instance)
}

/// Same as [`answer`], but takes a pre-computed (possibly Σ-filtered)
/// classifier relation — the hook used by extended queries (Definition 2).
pub fn answer_with_classifier_relation(
    q: &AnalyticalQuery,
    c_rel: Relation,
    instance: &Graph,
) -> Result<Cube, CoreError> {
    let joined = join_classifier_measure(q, c_rel, instance)?;
    let v_col = measure_value_col(q);
    let cells = group_aggregate(&joined, q.dim_vars(), v_col, q.agg(), instance.dict())?;
    Ok(Cube::from_cells(
        q.dim_names().iter().map(|s| s.to_string()).collect(),
        q.agg(),
        cells,
    ))
}

/// The synthetic column id used for the measure value `v` when rebasing the
/// measure relation into the classifier's variable space: one past the
/// classifier registry, hence guaranteed collision-free.
pub(crate) fn measure_value_col(q: &AnalyticalQuery) -> VarId {
    VarId(u16::try_from(q.classifier().vars().len()).expect("classifier variable overflow"))
}

/// Evaluates the measure (bag semantics), rebases its schema onto the
/// classifier's variable space, and joins with the classifier relation on
/// the fact variable. The result has schema `[x, d₁…dₙ, v]`.
///
/// Both inputs come out of the engine's flat-buffer evaluator, and the
/// single shared column means [`Relation::natural_join`] takes its packed
/// `u64`-key path — the whole classifier ⋈ measure step allocates no
/// per-row keys.
pub(crate) fn join_classifier_measure(
    q: &AnalyticalQuery,
    c_rel: Relation,
    instance: &Graph,
) -> Result<Relation, CoreError> {
    let mut m_rel = evaluate(instance, q.measure(), Semantics::Bag)?;
    m_rel.set_schema(vec![q.root(), measure_value_col(q)])?;
    Ok(c_rel.natural_join(&m_rel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_rdf::{parse_turtle, Term};

    /// The instance of Example 2: classifier answers for user1/3/4 and the
    /// measure bags {|s1,s1,s2|}, {|s2|}, {|s3|}.
    fn example_2_instance() -> Graph {
        parse_turtle(
            "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
             <user3> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user4> rdf:type <Blogger> ; <hasAge> 35 ; <livesIn> \"NY\" .
             <user1> <wrotePost> <p1>, <p2>, <p3> .
             <p1> <postedOn> <s1> . <p2> <postedOn> <s1> . <p3> <postedOn> <s2> .
             <user3> <wrotePost> <p4> . <p4> <postedOn> <s2> .
             <user4> <wrotePost> <p5> . <p5> <postedOn> <s3> .",
        )
        .unwrap()
    }

    fn example_1_query(g: &mut Graph) -> AnalyticalQuery {
        AnalyticalQuery::parse(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite",
            AggFunc::Count,
            g.dict_mut(),
        )
        .unwrap()
    }

    #[test]
    fn example_2_answer_is_reproduced_exactly() {
        // Paper: ans(Q) = {⟨28, Madrid, 3⟩, ⟨35, NY, 2⟩}.
        let mut g = example_2_instance();
        let q = example_1_query(&mut g);
        let cube = answer(&q, &g).unwrap();
        assert_eq!(cube.len(), 2);

        let age28 = g.dict().id(&Term::integer(28)).unwrap();
        let madrid = g.dict().id(&Term::literal("Madrid")).unwrap();
        let age35 = g.dict().id(&Term::integer(35)).unwrap();
        let ny = g.dict().id(&Term::literal("NY")).unwrap();
        assert_eq!(cube.get(&[age28, madrid]), Some(&AggValue::Int(3)));
        assert_eq!(cube.get(&[age35, ny]), Some(&AggValue::Int(2)));
    }

    #[test]
    fn facts_with_empty_measure_bags_contribute_nothing() {
        // user5 classifies but wrote no posts: no cell for ⟨40, Kyoto⟩.
        let mut g = example_2_instance();
        rdfcube_rdf::parse_into(
            "<user5> rdf:type <Blogger> ; <hasAge> 40 ; <livesIn> \"Kyoto\" .",
            &mut g,
        )
        .unwrap();
        let q = example_1_query(&mut g);
        let cube = answer(&q, &g).unwrap();
        assert_eq!(cube.len(), 2);
        let age40 = g.dict().id(&Term::integer(40)).unwrap();
        let kyoto = g.dict().id(&Term::literal("Kyoto")).unwrap();
        assert_eq!(cube.get(&[age40, kyoto]), None);
    }

    #[test]
    fn multi_valued_dimension_puts_fact_in_multiple_cells() {
        // user1 lives in Madrid AND Kyoto: its 3 posts count in both cells.
        let mut g = example_2_instance();
        rdfcube_rdf::parse_into("<user1> <livesIn> \"Kyoto\" .", &mut g).unwrap();
        let q = example_1_query(&mut g);
        let cube = answer(&q, &g).unwrap();
        let age28 = g.dict().id(&Term::integer(28)).unwrap();
        let madrid = g.dict().id(&Term::literal("Madrid")).unwrap();
        let kyoto = g.dict().id(&Term::literal("Kyoto")).unwrap();
        assert_eq!(cube.get(&[age28, madrid]), Some(&AggValue::Int(3)));
        assert_eq!(cube.get(&[age28, kyoto]), Some(&AggValue::Int(3)));
    }

    #[test]
    fn zero_dimensional_cube_is_a_single_cell() {
        let mut g = example_2_instance();
        let q = AnalyticalQuery::parse(
            "c(?x) :- ?x rdf:type Blogger",
            "m(?x, ?v) :- ?x wrotePost ?v",
            AggFunc::Count,
            g.dict_mut(),
        )
        .unwrap();
        let cube = answer(&q, &g).unwrap();
        assert_eq!(cube.len(), 1);
        assert_eq!(cube.get(&[]), Some(&AggValue::Int(5)));
    }

    #[test]
    fn zero_dimensional_cube_via_pres_matches_direct() {
        // Regression for row multiplicity at arity 0: the dims columns are
        // empty, so both γ and Equation 3 must still see one record per
        // measure tuple (5 posts), not zero rows.
        use crate::extended::ExtendedQuery;
        use crate::pres::PartialResult;
        let mut g = example_2_instance();
        let q = AnalyticalQuery::parse(
            "c(?x) :- ?x rdf:type Blogger",
            "m(?x, ?v) :- ?x wrotePost ?v",
            AggFunc::Count,
            g.dict_mut(),
        )
        .unwrap();
        let direct = answer(&q, &g).unwrap();
        let eq = ExtendedQuery::from_query(q);
        let pres = PartialResult::compute(&eq, &g).unwrap();
        assert_eq!(pres.n_dims(), 0);
        assert_eq!(pres.len(), 5);
        let from_pres = pres.to_cube(g.dict()).unwrap();
        assert!(from_pres.same_cells(&direct));
        assert_eq!(from_pres.get(&[]), Some(&AggValue::Int(5)));
    }

    #[test]
    fn table_rendering_is_stable() {
        let mut g = example_2_instance();
        let q = example_1_query(&mut g);
        let cube = answer(&q, &g).unwrap();
        let table = cube.to_table(g.dict());
        assert!(table.contains("dage"));
        assert!(table.contains("count(v)"));
        assert!(table.contains("Madrid"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn get_on_missing_key_is_none() {
        let cube = Cube::from_cells(vec!["d".into()], AggFunc::Count, vec![]);
        assert!(cube.is_empty());
        assert_eq!(cube.get(&[TermId(0)]), None);
    }

    #[test]
    fn csv_export_quotes_properly() {
        let mut g = example_2_instance();
        rdfcube_rdf::parse_into(
            "<user9> rdf:type <Blogger> ; <hasAge> 41 ; <livesIn> \"Quoted \\\"City\\\", X\" .
             <user9> <wrotePost> <p9> . <p9> <postedOn> <s9> .",
            &mut g,
        )
        .unwrap();
        let q = example_1_query(&mut g);
        let cube = answer(&q, &g).unwrap();
        let csv = cube.to_csv(g.dict());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("dage,dcity,count_v"));
        assert_eq!(csv.lines().count(), cube.len() + 1);
        assert!(csv.contains("\"Quoted \"\"City\"\", X\""), "csv: {csv}");
        assert!(csv.contains("28,Madrid,3"));
    }

    #[test]
    fn approx_same_tolerates_float_jitter_only() {
        let k = vec![TermId(1)];
        let a = Cube::from_cells(
            vec!["d".into()],
            AggFunc::Avg,
            vec![(k.clone(), AggValue::Float(10.0))],
        );
        let b = Cube::from_cells(
            vec!["d".into()],
            AggFunc::Avg,
            vec![(k.clone(), AggValue::Float(10.0 + 1e-12))],
        );
        let c = Cube::from_cells(
            vec!["d".into()],
            AggFunc::Avg,
            vec![(k, AggValue::Float(11.0))],
        );
        assert!(a.approx_same(&b, 1e-9));
        assert!(!a.approx_same(&c, 1e-9));
        assert!(
            !a.same_cells(&b),
            "bit-exact comparison still distinguishes"
        );
    }

    #[test]
    fn approx_bytes_grows_with_rows_and_dims() {
        let one_dim = |n: usize| {
            Cube::from_cells(
                vec!["d".into()],
                AggFunc::Count,
                (0..n)
                    .map(|i| (vec![TermId(i as u32)], AggValue::Int(1)))
                    .collect(),
            )
        };
        assert!(one_dim(100).approx_bytes() > one_dim(10).approx_bytes());

        let wide = Cube::from_cells(
            vec!["a".into(), "b".into(), "c".into()],
            AggFunc::Count,
            (0..10)
                .map(|i| {
                    let t = TermId(i as u32);
                    (vec![t, t, t], AggValue::Int(1))
                })
                .collect(),
        );
        assert!(
            wide.approx_bytes() > one_dim(10).approx_bytes(),
            "more dimensions per cell must weigh more"
        );
        assert!(
            one_dim(0).approx_bytes() > 0,
            "empty cubes still have a header"
        );
    }

    #[test]
    fn with_dim_names_relabels_only() {
        let cube = Cube::from_cells(
            vec!["old".into()],
            AggFunc::Count,
            vec![(vec![TermId(1)], AggValue::Int(2))],
        );
        let renamed = cube.clone().with_dim_names(vec!["new".into()]);
        assert_eq!(renamed.dim_names(), &["new".to_string()]);
        assert_eq!(renamed.cells(), cube.cells());
    }
}
