//! # rdfcube-core — RDF analytics with efficient OLAP operations
//!
//! A from-scratch implementation of *"Efficient OLAP Operations For RDF
//! Analytics"* (Akbari-Azirani, Goasdoué, Manolescu, Roatiş — DESWeb @ ICDE
//! 2015) and the RDF-analytics framework it builds on (WWW 2014):
//!
//! * [`schema`] — analytical schemas (AnS): lenses over semantic graphs,
//!   with instance materialization;
//! * [`anq`] / [`answer`](mod@answer) — analytical queries (AnQ)
//!   `⟨c, m, ⊕⟩` and their cube answers (Definition 1);
//! * [`extended`] — extended AnQs with Σ dimension restrictions
//!   (Definition 2);
//! * [`olap`] — SLICE, DICE, DRILL-OUT, DRILL-IN as query rewritings (§2);
//! * [`pres`] — partial results `pres(Q) = c(I) ⋈ₓ m^k(I)`
//!   (Definitions 3–4, Equations 1–3);
//! * [`aux_query`] — auxiliary drill-in queries (Definition 6);
//! * [`rewrite`] — the optimized operation evaluations: σ_dice
//!   (Proposition 1), Algorithm 1 (Proposition 2), Algorithm 2
//!   (Proposition 3), plus baselines and per-strategy cost hooks;
//! * [`catalog`] — the signature-indexed cube catalog: O(1) derivation-
//!   family lookup, per-entry statistics, and memory-budgeted eviction
//!   with on-demand recomputation;
//! * [`cost`] — the cost model that picks the cheapest *applicable*
//!   strategy from materialized sizes and instance statistics, explained
//!   through [`ExplainedStrategy`];
//! * [`session`] — materialized-cube sessions tying it all together:
//!   every query and OLAP operation is answered by the cheapest sound
//!   strategy automatically;
//! * [`shared`] — the concurrent query plane: a `Send + Sync`
//!   [`SharedSession`] serving `answer_query`/`transform` to any number
//!   of threads over the same `Arc`-shared instance and catalog;
//! * [`advisor`] — workload-driven view selection: mines the catalog's
//!   query log, enumerates candidate lattice ancestors, and greedily
//!   pre-materializes the best benefit-per-byte set under the memory
//!   budget ([`OlapSession::advise`] /
//!   [`SharedSession::advise_if_stale`]).
//!
//! ## Quick example — the paper's Example 1 cube, sliced
//!
//! ```
//! use rdfcube_core::{OlapSession, OlapOp, Strategy};
//! use rdfcube_engine::AggFunc;
//! use rdfcube_rdf::{parse_turtle, Term};
//!
//! let instance = parse_turtle(
//!     "<user1> rdf:type <Blogger> ; <hasAge> 28 ; <livesIn> \"Madrid\" .
//!      <user1> <wrotePost> <p1> . <p1> <postedOn> <s1> .",
//! ).unwrap();
//! let mut session = OlapSession::new(instance);
//! let cube = session.register(
//!     "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
//!     "m(?x, ?vsite) :- ?x rdf:type Blogger, ?x wrotePost ?p, ?p postedOn ?vsite",
//!     AggFunc::Count,
//! ).unwrap();
//! let (sliced, strategy) = session.transform(
//!     cube,
//!     &OlapOp::Slice { dim: "dage".into(), value: Term::integer(28) },
//! ).unwrap();
//! assert_eq!(strategy, Strategy::SelectionOnAns); // Proposition 1 applied
//! assert_eq!(session.answer(sliced).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod advisor;
pub mod anq;
pub mod answer;
pub mod aux_query;
pub mod catalog;
pub mod cost;
pub mod error;
pub mod extended;
pub mod olap;
pub mod pres;
pub mod rewrite;
pub mod schema;
pub mod session;
pub mod shared;
pub mod signature;

pub use advisor::AdvisorReport;
pub use anq::AnalyticalQuery;
pub use answer::{answer, Cube};
pub use aux_query::build_aux_query;
pub use catalog::{
    CatalogCounters, CatalogEntry, CatalogStats, CubeCatalog, CubeSnapshot, CubeStats, Derivation,
    KeyStats, LoggedQuery,
};
pub use cost::{explain_analyze, CostModelReport, CostModelRow, ExplainedStrategy};
pub use error::CoreError;
pub use extended::{CompiledSelector, CompiledSigma, ExtendedQuery, Sigma, ValueSelector};
pub use olap::{apply, OlapOp};
pub use pres::{PartialResult, PresRow};
pub use schema::{AnalyticalSchema, EdgeSpec, NodeSpec};
pub use session::{CubeHandle, MaterializedCube, OlapSession, Strategy};
pub use shared::SharedSession;
pub use signature::{query_signature, BodySignature, ViewKey, ViewSignature};
