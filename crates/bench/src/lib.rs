//! Shared fixtures for the benchmark suite (criterion benches and the
//! `report` binary reproduce the same experiments E1–E9; see DESIGN.md §4
//! and EXPERIMENTS.md for the experiment ↔ paper-claim mapping).

#![warn(missing_docs)]

use rdfcube_core::{AnalyticalQuery, Cube};
use rdfcube_core::{ExtendedQuery, OlapOp, PartialResult, ValueSelector};
use rdfcube_datagen::{BloggerConfig, VideoConfig};
use rdfcube_engine::AggFunc;
use rdfcube_rdf::{Graph, Term};

/// Dataset scales (approximate triple counts) used by the sweeps.
pub const SCALES: [usize; 4] = [10_000, 50_000, 100_000, 250_000];

/// The default age-domain size of the generated blogger worlds (ages run
/// `18..18+AGE_DOMAIN`); dice selectivities are expressed against it.
pub const AGE_DOMAIN: usize = 50;

/// A prepared blogger-world fixture: instance + a registered Example 1 cube
/// (count of sites by age × city), with `ans(Q)` and `pres(Q)` materialized.
pub struct BloggerFixture {
    /// The AnS instance.
    pub instance: Graph,
    /// The extended query Q.
    pub eq: ExtendedQuery,
    /// Materialized `ans(Q)`.
    pub ans: Cube,
    /// Materialized `pres(Q)`.
    pub pres: PartialResult,
}

/// Builds the blogger fixture at roughly `triples` triples with the given
/// multi-valuedness for the city dimension.
pub fn blogger_fixture(triples: usize, multi_city_prob: f64) -> BloggerFixture {
    let cfg = BloggerConfig {
        multi_city_prob,
        ..BloggerConfig::with_approx_triples(triples)
    };
    blogger_fixture_with(cfg, rdfcube_datagen::EXAMPLE1_CLASSIFIER, AggFunc::Count)
}

/// Builds a blogger fixture with an explicit config/classifier/aggregate.
pub fn blogger_fixture_with(cfg: BloggerConfig, classifier: &str, agg: AggFunc) -> BloggerFixture {
    let mut instance = rdfcube_datagen::generate_instance(&cfg);
    let q = AnalyticalQuery::parse(
        classifier,
        rdfcube_datagen::EXAMPLE1_MEASURE,
        agg,
        instance.dict_mut(),
    )
    .expect("fixture query parses");
    let eq = ExtendedQuery::from_query(q);
    let pres = PartialResult::compute(&eq, &instance).expect("pres computes");
    let ans = pres.to_cube(instance.dict()).expect("ans from pres");
    BloggerFixture {
        instance,
        eq,
        ans,
        pres,
    }
}

/// A 3-dimensional classifier (age × city × site) for the drill-out sweeps;
/// the site dimension is reached through the posts and is naturally
/// multi-valued.
pub const CLASSIFIER_3D: &str = "c(?x, ?dage, ?dcity, ?dsite) :- ?x rdf:type Blogger, \
     ?x hasAge ?dage, ?x livesIn ?dcity, ?x wrotePost ?p, ?p postedOn ?dsite";

/// A video-world fixture for the drill-in experiments: instance + Example 6
/// cube with materialized results.
pub struct VideoFixture {
    /// The instance graph.
    pub instance: Graph,
    /// The Example 6 extended query.
    pub eq: ExtendedQuery,
    /// Materialized `pres(Q)`.
    pub pres: PartialResult,
}

/// Builds the video fixture at the given number of videos.
pub fn video_fixture(n_videos: usize) -> VideoFixture {
    let cfg = VideoConfig {
        n_videos,
        n_websites: (n_videos / 20).max(10),
        ..Default::default()
    };
    let mut instance = rdfcube_datagen::generate_videos(&cfg);
    let q = AnalyticalQuery::parse(
        rdfcube_datagen::EXAMPLE6_CLASSIFIER,
        rdfcube_datagen::EXAMPLE6_MEASURE,
        AggFunc::Sum,
        instance.dict_mut(),
    )
    .expect("video query parses");
    let eq = ExtendedQuery::from_query(q);
    let pres = PartialResult::compute(&eq, &instance).expect("pres computes");
    VideoFixture { instance, eq, pres }
}

/// The SLICE used across E1: bind `dage` to one mid-domain value.
pub fn e1_slice_op() -> OlapOp {
    OlapOp::Slice {
        dim: "dage".into(),
        value: Term::integer(30),
    }
}

/// The DICE of E2 at a given selectivity (% of the age domain admitted).
pub fn e2_dice_op(selectivity_pct: usize) -> OlapOp {
    let width = (AGE_DOMAIN * selectivity_pct).div_ceil(100).max(1) as i64;
    OlapOp::Dice {
        constraints: vec![(
            "dage".into(),
            ValueSelector::IntRange {
                lo: 18,
                hi: 18 + width - 1,
            },
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_core::{apply, rewrite};

    #[test]
    fn fixtures_build_and_strategies_agree_at_small_scale() {
        let f = blogger_fixture(5_000, 0.2);
        assert!(!f.ans.is_empty());
        // E1's actual comparison, in miniature.
        let diced = apply(&f.eq, &e1_slice_op()).unwrap();
        let fast = rewrite::dice_from_ans(&f.ans, diced.sigma(), f.instance.dict());
        let slow = rewrite::from_scratch(&diced, &f.instance).unwrap();
        assert!(fast.same_cells(&slow));
    }

    #[test]
    fn dice_selectivity_widths_are_monotone() {
        let f = blogger_fixture(5_000, 0.0);
        let mut last = 0;
        for pct in [1, 10, 50, 100] {
            let diced = apply(&f.eq, &e2_dice_op(pct)).unwrap();
            let cube = rewrite::dice_from_ans(&f.ans, diced.sigma(), f.instance.dict());
            assert!(cube.len() >= last, "selectivity {pct}% shrank the cube");
            last = cube.len();
        }
        assert_eq!(last, f.ans.len(), "100% dice must keep every cell");
    }

    #[test]
    fn video_fixture_supports_drill_in() {
        let f = video_fixture(500);
        let d3 = f.eq.query().classifier().vars().id("d3").unwrap();
        let (cube, _) =
            rewrite::drill_in_from_pres(f.eq.query(), &f.pres, d3, &f.instance).unwrap();
        let drilled = apply(&f.eq, &OlapOp::DrillIn { var: "d3".into() }).unwrap();
        assert!(cube.same_cells(&rewrite::from_scratch(&drilled, &f.instance).unwrap()));
    }

    #[test]
    fn three_dimensional_fixture_builds() {
        let cfg = BloggerConfig {
            n_bloggers: 300,
            ..Default::default()
        };
        let f = blogger_fixture_with(cfg, CLASSIFIER_3D, AggFunc::Count);
        assert_eq!(f.pres.n_dims(), 3);
        let (cube, _) = rewrite::drill_out_from_pres(&f.pres, &[2], f.instance.dict()).unwrap();
        let drilled = apply(
            &f.eq,
            &OlapOp::DrillOut {
                dims: vec!["dsite".into()],
            },
        )
        .unwrap();
        assert!(cube.same_cells(&rewrite::from_scratch(&drilled, &f.instance).unwrap()));
    }
}
