//! Shared fixtures for the benchmark suite (criterion benches and the
//! `report` binary reproduce the same experiments E1–E9; see DESIGN.md §4
//! and EXPERIMENTS.md for the experiment ↔ paper-claim mapping).

#![warn(missing_docs)]

use rdfcube_core::{AnalyticalQuery, Cube, OlapSession, Sigma};
use rdfcube_core::{ExtendedQuery, OlapOp, PartialResult, ValueSelector};
use rdfcube_datagen::{BloggerConfig, VideoConfig};
use rdfcube_engine::AggFunc;
use rdfcube_rdf::{Graph, Term};

/// Dataset scales (approximate triple counts) used by the sweeps.
pub const SCALES: [usize; 4] = [10_000, 50_000, 100_000, 250_000];

/// The default age-domain size of the generated blogger worlds (ages run
/// `18..18+AGE_DOMAIN`); dice selectivities are expressed against it.
pub const AGE_DOMAIN: usize = 50;

/// A prepared blogger-world fixture: instance + a registered Example 1 cube
/// (count of sites by age × city), with `ans(Q)` and `pres(Q)` materialized.
pub struct BloggerFixture {
    /// The AnS instance.
    pub instance: Graph,
    /// The extended query Q.
    pub eq: ExtendedQuery,
    /// Materialized `ans(Q)`.
    pub ans: Cube,
    /// Materialized `pres(Q)`.
    pub pres: PartialResult,
}

/// Builds the blogger fixture at roughly `triples` triples with the given
/// multi-valuedness for the city dimension.
pub fn blogger_fixture(triples: usize, multi_city_prob: f64) -> BloggerFixture {
    let cfg = BloggerConfig {
        multi_city_prob,
        ..BloggerConfig::with_approx_triples(triples)
    };
    blogger_fixture_with(cfg, rdfcube_datagen::EXAMPLE1_CLASSIFIER, AggFunc::Count)
}

/// Builds a blogger fixture with an explicit config/classifier/aggregate.
pub fn blogger_fixture_with(cfg: BloggerConfig, classifier: &str, agg: AggFunc) -> BloggerFixture {
    let mut instance = rdfcube_datagen::generate_instance(&cfg);
    let q = AnalyticalQuery::parse(
        classifier,
        rdfcube_datagen::EXAMPLE1_MEASURE,
        agg,
        instance.dict_mut(),
    )
    .expect("fixture query parses");
    let eq = ExtendedQuery::from_query(q);
    let pres = PartialResult::compute(&eq, &instance).expect("pres computes");
    let ans = pres.to_cube(instance.dict()).expect("ans from pres");
    BloggerFixture {
        instance,
        eq,
        ans,
        pres,
    }
}

/// A 3-dimensional classifier (age × city × site) for the drill-out sweeps;
/// the site dimension is reached through the posts and is naturally
/// multi-valued.
pub const CLASSIFIER_3D: &str = "c(?x, ?dage, ?dcity, ?dsite) :- ?x rdf:type Blogger, \
     ?x hasAge ?dage, ?x livesIn ?dcity, ?x wrotePost ?p, ?p postedOn ?dsite";

/// A video-world fixture for the drill-in experiments: instance + Example 6
/// cube with materialized results.
pub struct VideoFixture {
    /// The instance graph.
    pub instance: Graph,
    /// The Example 6 extended query.
    pub eq: ExtendedQuery,
    /// Materialized `pres(Q)`.
    pub pres: PartialResult,
}

/// Builds the video fixture at the given number of videos.
pub fn video_fixture(n_videos: usize) -> VideoFixture {
    let cfg = VideoConfig {
        n_videos,
        n_websites: (n_videos / 20).max(10),
        ..Default::default()
    };
    let mut instance = rdfcube_datagen::generate_videos(&cfg);
    let q = AnalyticalQuery::parse(
        rdfcube_datagen::EXAMPLE6_CLASSIFIER,
        rdfcube_datagen::EXAMPLE6_MEASURE,
        AggFunc::Sum,
        instance.dict_mut(),
    )
    .expect("video query parses");
    let eq = ExtendedQuery::from_query(q);
    let pres = PartialResult::compute(&eq, &instance).expect("pres computes");
    VideoFixture { instance, eq, pres }
}

/// A catalog stress fixture (experiment E10): one blogger-world session
/// with `n_cubes` materialized cubes spread over every combination of five
/// classifier bodies, two measures, and the aggregate functions valid for
/// each — plus Σ-diced variants within each family — and a probe set of
/// independently-written target queries (renamed variables, reordered
/// patterns, dice/drill-out/drill-in shapes) that exercise view reuse.
pub struct CatalogFixture {
    /// The session with `n_cubes` materialized cubes.
    pub session: OlapSession,
    /// Target queries to plan/answer against the catalog.
    pub probes: Vec<ExtendedQuery>,
}

/// The five classifier bodies of the E10 workload (each canonicalizes to a
/// distinct derivation-family body).
const E10_BODIES: [&str; 5] = [
    // Example 1's body (age × city).
    "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
    // Same dimensions plus an existential post (drill-in capable).
    "c(?x, ?dage, ?dcity) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity, \
     ?x wrotePost ?p",
    // City only.
    "c(?x, ?dcity) :- ?x rdf:type Blogger, ?x livesIn ?dcity",
    // Age only.
    "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage",
    // The 3-D classifier (age × city × site).
    CLASSIFIER_3D,
];

/// Independently-written probe classifiers: renamed variables, shuffled
/// patterns, and dice/drill-out/drill-in shapes over the same bodies.
const E10_PROBES: [&str; 7] = [
    // Body 1, renamed + reordered (identity dice).
    "k(?u, ?years, ?town) :- ?u livesIn ?town, ?u hasAge ?years, ?u rdf:type Blogger",
    // Body 2, renamed (identity dice).
    "k(?u, ?years, ?town) :- ?u wrotePost ?w, ?u livesIn ?town, ?u hasAge ?years, \
     ?u rdf:type Blogger",
    // Body 2, drill-out shape (age existential).
    "k(?u, ?town) :- ?u wrotePost ?w, ?u livesIn ?town, ?u hasAge ?a, ?u rdf:type Blogger",
    // Body 2, drill-in shape (the post promoted to a dimension).
    "k(?u, ?years, ?town, ?post) :- ?u wrotePost ?post, ?u livesIn ?town, ?u hasAge ?years, \
     ?u rdf:type Blogger",
    // Body 3, renamed.
    "k(?u, ?town) :- ?u livesIn ?town, ?u rdf:type Blogger",
    // Body 5, drill-out shape (site existential).
    "k(?u, ?years, ?town) :- ?u rdf:type Blogger, ?u hasAge ?years, ?u livesIn ?town, \
     ?u wrotePost ?q, ?q postedOn ?s",
    // Body 5, renamed 3-D (identity dice).
    "k(?u, ?years, ?town, ?site) :- ?q postedOn ?site, ?u wrotePost ?q, ?u livesIn ?town, \
     ?u hasAge ?years, ?u rdf:type Blogger",
];

/// Measures (paper notation) with the aggregates that are valid for each:
/// sites are IRIs (no arithmetic), word counts are integers.
fn e10_measures() -> [(&'static str, &'static str, Vec<AggFunc>); 2] {
    [
        (
            rdfcube_datagen::EXAMPLE1_MEASURE,
            "w(?u, ?s) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q postedOn ?s",
            vec![
                AggFunc::Count,
                AggFunc::CountDistinct,
                AggFunc::Min,
                AggFunc::Max,
            ],
        ),
        (
            rdfcube_datagen::EXAMPLE4_MEASURE,
            "w(?u, ?wc) :- ?u rdf:type Blogger, ?u wrotePost ?q, ?q hasWordCount ?wc",
            vec![
                AggFunc::Count,
                AggFunc::CountDistinct,
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::Min,
                AggFunc::Max,
            ],
        ),
    ]
}

/// Builds the E10 fixture: a session of roughly `triples` triples holding
/// `n_cubes` materialized cubes, with an unbounded catalog.
pub fn catalog_fixture(triples: usize, n_cubes: usize) -> CatalogFixture {
    catalog_fixture_with_budget(triples, n_cubes, None)
}

/// [`catalog_fixture`] with an optional memory budget on the session. The
/// generated instance is seeded, so two fixtures at the same scale hold
/// identical data — the budgeted/unbudgeted answer comparison of E10
/// relies on that.
pub fn catalog_fixture_with_budget(
    triples: usize,
    n_cubes: usize,
    budget: Option<usize>,
) -> CatalogFixture {
    let cfg = BloggerConfig {
        multi_city_prob: 0.1,
        ..BloggerConfig::with_approx_triples(triples)
    };
    let instance = rdfcube_datagen::generate_instance(&cfg);
    let mut session = match budget {
        Some(bytes) => OlapSession::with_budget(instance, bytes),
        None => OlapSession::new(instance),
    };

    // Round-robin the (body, measure, agg) combinations; each subsequent
    // round registers a narrower Σ-diced variant in the same family.
    let measures = e10_measures();
    let mut combos: Vec<(&str, &str, AggFunc)> = Vec::new();
    for body in E10_BODIES {
        for (measure, _, aggs) in &measures {
            for &agg in aggs {
                combos.push((body, measure, agg));
            }
        }
    }
    let mut registered = 0usize;
    let mut variant = 0i64;
    'fill: loop {
        for &(classifier, measure, agg) in &combos {
            if registered == n_cubes {
                break 'fill;
            }
            let mut eq = session
                .parse_query(classifier, measure, agg)
                .expect("workload query parses");
            if variant > 0 {
                // Each round narrows a different-width Σ so every family
                // member is a distinct diced variant: age ranges where an
                // age dimension exists, otherwise city subsets (the
                // generated worlds name their cities "city0", "city1", …).
                let mut sigma = Sigma::all(eq.query().n_dims());
                if let Ok(i) = eq.query().dim_index("dage") {
                    sigma.set(
                        i,
                        ValueSelector::IntRange {
                            lo: 18,
                            hi: 18 + variant,
                        },
                    );
                } else if let Ok(i) = eq.query().dim_index("dcity") {
                    let cities = (0..variant)
                        .map(|c| Term::literal(format!("city{c}")))
                        .collect();
                    sigma.set(i, ValueSelector::OneOf(cities));
                }
                eq = ExtendedQuery::with_sigma(eq.query().clone(), sigma)
                    .expect("sigma arity matches");
            }
            session.register_query(eq).expect("workload cube registers");
            registered += 1;
        }
        variant += 1;
    }

    // Probe set: every probe classifier × a representative (measure, agg)
    // subset (two aggregates per measure keep the probe loop cheap while
    // still spanning several families), plus a diced variant of each probe
    // that has an age dimension.
    let mut probes = Vec::new();
    for classifier in E10_PROBES {
        for (_, renamed_measure, aggs) in &measures {
            for &agg in &aggs[..2] {
                let eq = session
                    .parse_query(classifier, renamed_measure, agg)
                    .expect("probe parses");
                if let Ok(i) = eq.query().dim_index("years") {
                    let mut sigma = Sigma::all(eq.query().n_dims());
                    sigma.set(i, ValueSelector::IntRange { lo: 20, hi: 40 });
                    probes.push(
                        ExtendedQuery::with_sigma(eq.query().clone(), sigma)
                            .expect("sigma arity matches"),
                    );
                }
                probes.push(eq);
            }
        }
    }
    CatalogFixture { session, probes }
}

/// Configuration of the E13 advisor experiment: two sessions at the same
/// byte budget replay the same Zipf-skewed warmup of distinct-but-derivable
/// query variants; one then runs [`OlapSession::advise`]; both are measured
/// on *fresh* (never-warmed) variants afterwards.
#[derive(Debug, Clone)]
pub struct AdvisorProtocolConfig {
    /// Approximate instance size in triples.
    pub triples: usize,
    /// Byte budget shared by both sessions.
    pub budget_bytes: usize,
    /// Distinct query shapes in the warmup pool.
    pub warmup_pool: usize,
    /// Zipf-sampled warmup queries drawn from that pool.
    pub warmup_len: usize,
    /// Fresh (not in the warmup pool) shapes measured afterwards.
    pub measured: usize,
    /// Zipf exponent of the warmup skew.
    pub zipf_s: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for AdvisorProtocolConfig {
    fn default() -> Self {
        AdvisorProtocolConfig {
            triples: 100_000,
            // Large enough for the family's unrestricted ancestors
            // (~1.2 MiB at this scale), small enough that the warmup pool
            // cannot stay fully resident — the advisor only pays off
            // under budget pressure.
            budget_bytes: 5 << 18,
            warmup_pool: 144,
            warmup_len: 640,
            measured: 24,
            zipf_s: 1.0,
            seed: 0xE13,
        }
    }
}

/// The outcome of one E13 protocol run.
pub struct AdvisorRun {
    /// Per-query end-to-end latency of the reactive session on the
    /// measured (fresh) phase, in nanoseconds.
    pub reactive_nanos: Vec<u64>,
    /// Same for the advised session.
    pub advised_nanos: Vec<u64>,
    /// What the advisor considered/selected/materialized.
    pub report: rdfcube_core::AdvisorReport,
    /// Reactive-session counter delta over the measured phase.
    pub reactive_counters: rdfcube_core::CatalogCounters,
    /// Advised-session counter delta over the measured phase.
    pub advised_counters: rdfcube_core::CatalogCounters,
    /// True iff every measured query produced cell-identical answers in
    /// both sessions.
    pub cells_identical: bool,
}

impl AdvisorRun {
    /// Median of a latency vector, in nanoseconds.
    pub fn median_nanos(v: &[u64]) -> u64 {
        let mut v = v.to_vec();
        v.sort_unstable();
        v[v.len() / 2]
    }

    /// Catalog hit rate out of a counter delta (1.0 when nothing ran).
    pub fn hit_rate(c: &rdfcube_core::CatalogCounters) -> f64 {
        let total = c.hits + c.misses;
        if total == 0 {
            1.0
        } else {
            c.hits as f64 / total as f64
        }
    }
}

/// Runs the E13 advisor protocol (see [`AdvisorProtocolConfig`]). Shared
/// by the `e13_advisor` bench, its smoke test, and the `report` binary so
/// all three measure the identical experiment.
pub fn advisor_protocol(cfg: &AdvisorProtocolConfig) -> AdvisorRun {
    use rdfcube_datagen::{variant_pool, zipf_sequence, DimDomain};
    use std::time::Instant;

    let world = BloggerConfig {
        multi_city_prob: 0.1,
        ..BloggerConfig::with_approx_triples(cfg.triples)
    };
    let mut instance = rdfcube_datagen::generate_instance(&world);
    let q = AnalyticalQuery::parse(
        rdfcube_datagen::EXAMPLE1_CLASSIFIER,
        rdfcube_datagen::EXAMPLE1_MEASURE,
        AggFunc::Count,
        instance.dict_mut(),
    )
    .expect("base query parses");
    let base = ExtendedQuery::from_query(q);
    let domains = vec![
        DimDomain::new(
            "dage",
            (18..18 + world.n_ages as i64).map(Term::integer).collect(),
        ),
        DimDomain::new(
            "dcity",
            (0..world.n_cities)
                .map(|i| Term::literal(format!("city{i}")))
                .collect(),
        ),
    ];
    let pool = variant_pool(&base, &domains, cfg.warmup_pool).expect("variant pool builds");
    let warmup = zipf_sequence(cfg.warmup_pool, cfg.warmup_len, cfg.zipf_s, cfg.seed);

    // Measured phase: single-value dices over a value region disjoint
    // from the warmup's, alternating dimensions, every value distinct —
    // the dominant dashboard pattern (drill to one member, look, drill to
    // the next). None is derivable from the warmup pool or from another
    // measured variant — only from an unrestricted ancestor, so the phase
    // isolates exactly what the advisor materialized.
    let warmup_value_ceiling = (cfg.warmup_pool - 1) / (3 * domains.len()) + 2;
    let fresh: Vec<ExtendedQuery> = (0..cfg.measured)
        .map(|k| {
            let d = &domains[k % domains.len()];
            let value = d.values[(warmup_value_ceiling + k) % d.values.len()].clone();
            let dice = OlapOp::Dice {
                constraints: vec![(d.dim.clone(), ValueSelector::one(value))],
            };
            rdfcube_core::apply(&base, &dice)
        })
        .collect::<Result<_, _>>()
        .expect("fresh variants build");

    // Both sessions see the identical instance (identical dictionary
    // encodings) and the identical warmup traffic at the same budget.
    let mut reactive = OlapSession::with_budget(instance.clone(), cfg.budget_bytes);
    let mut advised = OlapSession::with_budget(instance, cfg.budget_bytes);
    for &i in &warmup {
        reactive
            .answer_query(pool[i].clone())
            .expect("warmup answers");
        advised
            .answer_query(pool[i].clone())
            .expect("warmup answers");
    }

    let report = advised.advise().expect("advise runs");

    let r0 = reactive.catalog().counters();
    let a0 = advised.catalog().counters();
    let mut reactive_nanos = Vec::with_capacity(cfg.measured);
    let mut advised_nanos = Vec::with_capacity(cfg.measured);
    let mut cells_identical = true;
    for eq in &fresh {
        let t = Instant::now();
        let (rh, _) = reactive.answer_query(eq.clone()).expect("measured answers");
        reactive_nanos.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        let (ah, _) = advised.answer_query(eq.clone()).expect("measured answers");
        advised_nanos.push(t.elapsed().as_nanos() as u64);
        cells_identical &= advised.answer(ah).same_cells(reactive.answer(rh));
    }
    let delta = |after: rdfcube_core::CatalogCounters, before: rdfcube_core::CatalogCounters| {
        rdfcube_core::CatalogCounters {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
            rehydrations: after.rehydrations - before.rehydrations,
            refreshes: after.refreshes - before.refreshes,
        }
    };
    AdvisorRun {
        reactive_nanos,
        advised_nanos,
        report,
        reactive_counters: delta(reactive.catalog().counters(), r0),
        advised_counters: delta(advised.catalog().counters(), a0),
        cells_identical,
    }
}

/// The SLICE used across E1: bind `dage` to one mid-domain value.
pub fn e1_slice_op() -> OlapOp {
    OlapOp::Slice {
        dim: "dage".into(),
        value: Term::integer(30),
    }
}

/// The DICE of E2 at a given selectivity (% of the age domain admitted).
pub fn e2_dice_op(selectivity_pct: usize) -> OlapOp {
    let width = (AGE_DOMAIN * selectivity_pct).div_ceil(100).max(1) as i64;
    OlapOp::Dice {
        constraints: vec![(
            "dage".into(),
            ValueSelector::IntRange {
                lo: 18,
                hi: 18 + width - 1,
            },
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfcube_core::{apply, rewrite};

    #[test]
    fn fixtures_build_and_strategies_agree_at_small_scale() {
        let f = blogger_fixture(5_000, 0.2);
        assert!(!f.ans.is_empty());
        // E1's actual comparison, in miniature.
        let diced = apply(&f.eq, &e1_slice_op()).unwrap();
        let fast = rewrite::dice_from_ans(&f.ans, diced.sigma(), f.instance.dict());
        let slow = rewrite::from_scratch(&diced, &f.instance).unwrap();
        assert!(fast.same_cells(&slow));
    }

    #[test]
    fn dice_selectivity_widths_are_monotone() {
        let f = blogger_fixture(5_000, 0.0);
        let mut last = 0;
        for pct in [1, 10, 50, 100] {
            let diced = apply(&f.eq, &e2_dice_op(pct)).unwrap();
            let cube = rewrite::dice_from_ans(&f.ans, diced.sigma(), f.instance.dict());
            assert!(cube.len() >= last, "selectivity {pct}% shrank the cube");
            last = cube.len();
        }
        assert_eq!(last, f.ans.len(), "100% dice must keep every cell");
    }

    #[test]
    fn video_fixture_supports_drill_in() {
        let f = video_fixture(500);
        let d3 = f.eq.query().classifier().vars().id("d3").unwrap();
        let (cube, _) =
            rewrite::drill_in_from_pres(f.eq.query(), &f.pres, d3, &f.instance).unwrap();
        let drilled = apply(&f.eq, &OlapOp::DrillIn { var: "d3".into() }).unwrap();
        assert!(cube.same_cells(&rewrite::from_scratch(&drilled, &f.instance).unwrap()));
    }

    #[test]
    fn catalog_fixture_builds_and_probes_hit() {
        let mut f = catalog_fixture(4_000, 30);
        assert_eq!(f.session.len(), 30);
        assert!(!f.probes.is_empty());
        // Most probes must be servable from the catalog; every planned
        // answer must match from-scratch evaluation.
        let mut hits = 0usize;
        for p in &f.probes {
            if f.session.explain_query(p).catalog_hit {
                hits += 1;
            }
        }
        assert!(
            hits * 2 > f.probes.len(),
            "majority of probes should hit: {hits}/{}",
            f.probes.len()
        );
        // Spot-check soundness through answer_query on a few probes.
        for p in f.probes.iter().take(6).cloned().collect::<Vec<_>>() {
            let (h, _) = f.session.answer_query(p).unwrap();
            let scratch = f
                .session
                .cube(h)
                .query()
                .answer(f.session.instance())
                .unwrap();
            assert!(f.session.answer(h).same_cells(&scratch));
        }
    }

    #[test]
    fn advisor_protocol_runs_in_miniature() {
        let cfg = AdvisorProtocolConfig {
            triples: 4_000,
            budget_bytes: 64 << 10,
            warmup_pool: 12,
            warmup_len: 40,
            measured: 6,
            ..Default::default()
        };
        let run = advisor_protocol(&cfg);
        assert!(run.cells_identical, "advised answers must match reactive");
        assert_eq!(run.reactive_nanos.len(), 6);
        assert_eq!(run.advised_nanos.len(), 6);
        assert!(run.report.log_queries >= 40, "warmup was logged");
        assert!(run.report.shapes >= 1);
    }

    #[test]
    fn three_dimensional_fixture_builds() {
        let cfg = BloggerConfig {
            n_bloggers: 300,
            ..Default::default()
        };
        let f = blogger_fixture_with(cfg, CLASSIFIER_3D, AggFunc::Count);
        assert_eq!(f.pres.n_dims(), 3);
        let (cube, _) = rewrite::drill_out_from_pres(&f.pres, &[2], f.instance.dict()).unwrap();
        let drilled = apply(
            &f.eq,
            &OlapOp::DrillOut {
                dims: vec!["dsite".into()],
            },
        )
        .unwrap();
        assert!(cube.same_cells(&rewrite::from_scratch(&drilled, &f.instance).unwrap()));
    }
}
