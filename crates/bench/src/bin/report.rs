//! Experiment report generator: runs experiments E1–E7, E9, E10 and E13
//! and prints the markdown tables recorded in EXPERIMENTS.md (medians of
//! repeated runs).
//!
//! Run with: `cargo run --release -p rdfcube-bench --bin report`
//! Pass `--quick` for a fast, smaller-scale pass. Pass `--scale <n>` (a
//! triple count, or the word `large` for the deterministic ≥1M-triple
//! world) to add a scale point to every E-section sweep — e.g.
//! `--scale large` re-runs E1/E3/E5b/E6/E9 at a million triples.
//! Pass `--metrics` to dump the metrics registries (Prometheus text +
//! JSON) after each section — the global engine/store registry always,
//! plus any live session registry the section holds.

use rdfcube_bench::{
    blogger_fixture, blogger_fixture_with, catalog_fixture, catalog_fixture_with_budget,
    e1_slice_op, e2_dice_op, video_fixture, CLASSIFIER_3D,
};
use rdfcube_core::{answer, apply, explain_analyze, rewrite, CostModelReport, OlapOp, OlapSession};
use rdfcube_datagen::BloggerConfig;
use rdfcube_engine::{evaluate, evaluate_in_order, parse_query, AggFunc, Semantics};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Median wall-clock over `runs` executions of `f`. For an even number of
/// runs the two middle samples are averaged — returning the upper-middle
/// sample alone would bias every reported median upward.
fn median<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    let mid = times.len() / 2;
    if times.len() % 2 == 1 {
        times[mid]
    } else {
        (times[mid - 1] + times[mid]) / 2
    }
}

fn fmt(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2} s", d.as_secs_f64())
    } else if d.as_micros() >= 1000 {
        format!("{:.2} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1} µs", d.as_secs_f64() * 1e6)
    }
}

fn speedup(slow: Duration, fast: Duration) -> String {
    format!("{:.0}×", slow.as_secs_f64() / fast.as_secs_f64().max(1e-12))
}

/// With `--metrics`, prints the global registry snapshot (and any
/// session registries the section holds) in both export formats.
fn dump_metrics(enabled: bool, section: &str, sessions: &[(&str, rdfcube_obs::Snapshot)]) {
    if !enabled {
        return;
    }
    let global = rdfcube_obs::global_snapshot();
    let mut dumps: Vec<(&str, &rdfcube_obs::Snapshot)> = vec![("global", &global)];
    dumps.extend(sessions.iter().map(|(name, snap)| (*name, snap)));
    for (name, snap) in dumps {
        println!("\n### metrics after {section} — {name} registry (Prometheus)\n");
        println!("```\n{}```", snap.to_prometheus_text());
        println!("\n### metrics after {section} — {name} registry (JSON)\n");
        println!("```json\n{}\n```", snap.to_json());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let metrics = args.iter().any(|a| a == "--metrics");
    let runs = if quick { 3 } else { 7 };
    let mut scales: Vec<usize> = if quick {
        vec![10_000, 50_000]
    } else {
        vec![10_000, 50_000, 100_000, 250_000]
    };
    // `--scale <n|large>` adds extra scale points to every sweep.
    for w in args.windows(2) {
        if w[0] == "--scale" {
            let extra = match w[1].as_str() {
                "large" => rdfcube_datagen::LARGE_WORLD_TRIPLES,
                n => n.replace('_', "").parse().unwrap_or_else(|_| {
                    panic!("--scale takes a triple count or 'large', got {n:?}")
                }),
            };
            scales.push(extra);
        }
    }
    scales.sort_unstable();
    scales.dedup();

    println!("# rdfcube experiment report\n");
    println!("(medians of {runs} runs per point; release build)\n");

    // ---------------- E1: SLICE ----------------
    println!("## E1 — SLICE: σ over ans(Q) vs from-scratch\n");
    println!("| triples | |ans(Q)| cells | rewrite (Prop. 1) | from scratch | speedup |");
    println!("|---|---|---|---|---|");
    for &scale in &scales {
        let f = blogger_fixture(scale, 0.1);
        let sliced = apply(&f.eq, &e1_slice_op()).unwrap();
        let t_rw = median(runs, || {
            rewrite::dice_from_ans(&f.ans, sliced.sigma(), f.instance.dict())
        });
        let t_fs = median(runs, || {
            rewrite::from_scratch(&sliced, &f.instance).unwrap()
        });
        println!(
            "| {} | {} | {} | {} | {} |",
            f.instance.len(),
            f.ans.len(),
            fmt(t_rw),
            fmt(t_fs),
            speedup(t_fs, t_rw)
        );
    }

    dump_metrics(metrics, "E1", &[]);

    // ---------------- E2: DICE selectivity ----------------
    println!("\n## E2 — DICE selectivity sweep (100k triples)\n");
    println!("| selectivity | surviving cells | rewrite (Prop. 1) | from scratch | speedup |");
    println!("|---|---|---|---|---|");
    let f = blogger_fixture(if quick { 50_000 } else { 100_000 }, 0.1);
    for pct in [1usize, 10, 50, 100] {
        let diced = apply(&f.eq, &e2_dice_op(pct)).unwrap();
        let cube = rewrite::dice_from_ans(&f.ans, diced.sigma(), f.instance.dict());
        let t_rw = median(runs, || {
            rewrite::dice_from_ans(&f.ans, diced.sigma(), f.instance.dict())
        });
        let t_fs = median(runs, || rewrite::from_scratch(&diced, &f.instance).unwrap());
        println!(
            "| {pct}% | {} | {} | {} | {} |",
            cube.len(),
            fmt(t_rw),
            fmt(t_fs),
            speedup(t_fs, t_rw)
        );
    }

    dump_metrics(metrics, "E2", &[]);

    // ---------------- E3: DRILL-OUT ----------------
    println!("\n## E3 — DRILL-OUT: Algorithm 1 vs from-scratch\n");
    println!("| triples | dims | pres rows | Algorithm 1 | from scratch | speedup |");
    println!("|---|---|---|---|---|---|");
    for &scale in &scales {
        let f = blogger_fixture(scale, 0.1);
        let drilled = apply(
            &f.eq,
            &OlapOp::DrillOut {
                dims: vec!["dage".into()],
            },
        )
        .unwrap();
        let t_a1 = median(runs, || {
            rewrite::drill_out_from_pres(&f.pres, &[0], f.instance.dict())
        });
        let t_fs = median(runs, || {
            rewrite::from_scratch(&drilled, &f.instance).unwrap()
        });
        println!(
            "| {} | 2→1 | {} | {} | {} | {} |",
            f.instance.len(),
            f.pres.len(),
            fmt(t_a1),
            fmt(t_fs),
            speedup(t_fs, t_a1)
        );
    }
    {
        let cfg = BloggerConfig {
            multi_city_prob: 0.1,
            ..BloggerConfig::with_approx_triples(if quick { 50_000 } else { 100_000 })
        };
        let f3 = blogger_fixture_with(cfg, CLASSIFIER_3D, AggFunc::Count);
        let drilled = apply(
            &f3.eq,
            &OlapOp::DrillOut {
                dims: vec!["dsite".into()],
            },
        )
        .unwrap();
        let t_a1 = median(runs, || {
            rewrite::drill_out_from_pres(&f3.pres, &[2], f3.instance.dict())
        });
        let t_fs = median(runs, || {
            rewrite::from_scratch(&drilled, &f3.instance).unwrap()
        });
        println!(
            "| {} | 3→2 | {} | {} | {} | {} |",
            f3.instance.len(),
            f3.pres.len(),
            fmt(t_a1),
            fmt(t_fs),
            speedup(t_fs, t_a1)
        );
    }

    dump_metrics(metrics, "E3", &[]);

    // ---------------- E4: Example 5's trap, quantified ----------------
    println!("\n## E4 — drill-out correctness: Algorithm 1 vs naive ans-based\n");
    println!("| multi-valued city prob. | cells | naive wrong cells | mean cell inflation | Algorithm 1 wrong cells |");
    println!("|---|---|---|---|---|");
    for prob in [0.0f64, 0.01, 0.05, 0.1, 0.3, 0.5] {
        let f = blogger_fixture(if quick { 50_000 } else { 100_000 }, prob);
        let (correct, _) = rewrite::drill_out_from_pres(&f.pres, &[1], f.instance.dict()).unwrap();
        let naive = rewrite::drill_out_from_ans(&f.ans, &[1], f.instance.dict()).unwrap();
        let mut wrong = 0usize;
        let mut inflation = 0.0f64;
        for (k, v) in naive.cells() {
            let c = correct.get(k).expect("same cell keys");
            let (naive_v, correct_v) = (
                v.as_f64(f.instance.dict()).unwrap_or(0.0),
                c.as_f64(f.instance.dict()).unwrap_or(0.0),
            );
            if (naive_v - correct_v).abs() > 1e-9 {
                wrong += 1;
                inflation += (naive_v - correct_v) / correct_v.max(1.0);
            }
        }
        println!(
            "| {:.0}% | {} | {} ({:.0}%) | {:+.1}% | 0 |",
            prob * 100.0,
            naive.len(),
            wrong,
            100.0 * wrong as f64 / naive.len().max(1) as f64,
            100.0 * inflation / naive.len().max(1) as f64
        );
    }

    dump_metrics(metrics, "E4", &[]);

    // ---------------- E5: DRILL-IN ----------------
    println!("\n## E5 — DRILL-IN: Algorithm 2 vs from-scratch\n");
    println!("| videos | triples | pres rows | Algorithm 2 | from scratch | speedup |");
    println!("|---|---|---|---|---|---|");
    let video_scales: Vec<usize> = if quick {
        vec![1_000, 5_000]
    } else {
        vec![1_000, 5_000, 20_000, 50_000]
    };
    for n in video_scales {
        let f = video_fixture(n);
        let d3 = f.eq.query().classifier().vars().id("d3").unwrap();
        let drilled = apply(&f.eq, &OlapOp::DrillIn { var: "d3".into() }).unwrap();
        let t_a2 = median(runs, || {
            rewrite::drill_in_from_pres(f.eq.query(), &f.pres, d3, &f.instance).unwrap()
        });
        let t_fs = median(runs, || {
            rewrite::from_scratch(&drilled, &f.instance).unwrap()
        });
        println!(
            "| {n} | {} | {} | {} | {} | {} |",
            f.instance.len(),
            f.pres.len(),
            fmt(t_a2),
            fmt(t_fs),
            speedup(t_fs, t_a2)
        );
    }

    // ---------------- E5b: drill-in with a 1-triple auxiliary query -------
    println!("\n### E5b — drill-in whose new dimension attaches directly to the fact\n");
    println!("(auxiliary query is a single triple pattern — Algorithm 2's best case)\n");
    println!("| triples | Algorithm 2 | from scratch | speedup |");
    println!("|---|---|---|---|");
    for &scale in &scales {
        let cfg = BloggerConfig {
            multi_city_prob: 0.1,
            ..BloggerConfig::with_approx_triples(scale)
        };
        // dcity is existential in this classifier; drilling it in needs
        // only `?x livesIn ?dcity` from the instance.
        let f = blogger_fixture_with(
            cfg,
            "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
            AggFunc::Count,
        );
        let dcity = f.eq.query().classifier().vars().id("dcity").unwrap();
        let drilled = apply(
            &f.eq,
            &OlapOp::DrillIn {
                var: "dcity".into(),
            },
        )
        .unwrap();
        let t_a2 = median(runs, || {
            rewrite::drill_in_from_pres(f.eq.query(), &f.pres, dcity, &f.instance).unwrap()
        });
        let t_fs = median(runs, || {
            rewrite::from_scratch(&drilled, &f.instance).unwrap()
        });
        println!(
            "| {} | {} | {} | {} |",
            f.instance.len(),
            fmt(t_a2),
            fmt(t_fs),
            speedup(t_fs, t_a2)
        );
    }

    dump_metrics(metrics, "E5", &[]);

    // ---------------- E6: pres overhead & size ----------------
    println!("\n## E6 — pres(Q) materialization overhead and size\n");
    println!(
        "| triples | ans only | ans + pres | overhead | pres rows | pres bytes | bytes / triple |"
    );
    println!("|---|---|---|---|---|---|---|");
    for &scale in &scales {
        let f = blogger_fixture(scale, 0.1);
        let t_ans = median(runs, || f.eq.answer(&f.instance).unwrap());
        let t_both = median(runs, || {
            rewrite::from_scratch_with_pres(&f.eq, &f.instance).unwrap()
        });
        let overhead = (t_both.as_secs_f64() / t_ans.as_secs_f64().max(1e-12) - 1.0) * 100.0;
        println!(
            "| {} | {} | {} | {overhead:+.0}% | {} | {} | {:.1} |",
            f.instance.len(),
            fmt(t_ans),
            fmt(t_both),
            f.pres.len(),
            f.pres.approx_bytes(),
            f.pres.approx_bytes() as f64 / f.instance.len() as f64
        );
    }

    dump_metrics(metrics, "E6", &[]);

    // ---------------- E7: ablations ----------------
    println!("\n## E7 — ablations\n");
    println!("### (a) greedy join ordering vs declaration order\n");
    let mut f = blogger_fixture(if quick { 50_000 } else { 100_000 }, 0.1);
    let adversarial = parse_query(
        "q(?x, ?dcity) :- ?x wrotePost ?p, ?x livesIn ?dcity, ?p postedOn site1",
        f.instance.dict_mut(),
    )
    .unwrap();
    let t_greedy = median(runs, || {
        evaluate(&f.instance, &adversarial, Semantics::Set).unwrap()
    });
    let t_declared = median(runs, || {
        evaluate_in_order(&f.instance, &adversarial, Semantics::Set).unwrap()
    });
    println!("| strategy | time | |");
    println!("|---|---|---|");
    println!("| greedy (selective pattern first) | {} | |", fmt(t_greedy));
    println!(
        "| declaration order | {} | {} slower |",
        fmt(t_declared),
        speedup(t_declared, t_greedy)
    );

    println!("\n### (b) multi-valuedness fan-out: DRILL-OUT strategies\n");
    println!("| multi-city prob. | pres rows | Algorithm 1 | from scratch | speedup |");
    println!("|---|---|---|---|---|");
    for prob_pct in [0usize, 30, 60] {
        let f = blogger_fixture(
            if quick { 50_000 } else { 100_000 },
            prob_pct as f64 / 100.0,
        );
        let drilled = apply(
            &f.eq,
            &OlapOp::DrillOut {
                dims: vec!["dcity".into()],
            },
        )
        .unwrap();
        let t_a1 = median(runs, || {
            rewrite::drill_out_from_pres(&f.pres, &[1], f.instance.dict())
        });
        let t_fs = median(runs, || {
            rewrite::from_scratch(&drilled, &f.instance).unwrap()
        });
        println!(
            "| {prob_pct}% | {} | {} | {} | {} |",
            f.pres.len(),
            fmt(t_a1),
            fmt(t_fs),
            speedup(t_fs, t_a1)
        );
    }

    println!("\n### (c) Σ push-down vs post-filtering the classifier\n");
    println!("(1%-selective dice, evaluated from scratch both ways)\n");
    println!("| strategy | time | |");
    println!("|---|---|---|");
    {
        let f = blogger_fixture(if quick { 50_000 } else { 100_000 }, 0.1);
        let diced = apply(&f.eq, &e2_dice_op(1)).unwrap();
        let t_push = median(runs, || diced.classifier_relation(&f.instance).unwrap());
        let t_post = median(runs, || {
            diced.classifier_relation_postfilter(&f.instance).unwrap()
        });
        println!("| Σ pushed into matching | {} | |", fmt(t_push));
        println!(
            "| post-filter | {} | {} slower |",
            fmt(t_post),
            speedup(t_post, t_push)
        );
    }

    dump_metrics(metrics, "E7", &[]);

    // ---------------- E9: end-to-end evaluation pipeline ----------------
    println!("\n## E9 — end-to-end answer(): flat-buffer evaluation pipeline\n");
    println!("(classifier under set semantics, measure under bag semantics, and the");
    println!("full classifier ⋈ measure + γ path — the from-scratch cost every");
    println!("rewriting in E1–E5 is compared against)\n");
    println!("| triples | classifier (set) | measure (bag) | answer() | cells |");
    println!("|---|---|---|---|---|");
    for &scale in &scales {
        let f = blogger_fixture(scale, 0.1);
        let q = f.eq.query();
        let t_c = median(runs, || {
            evaluate(&f.instance, q.classifier(), Semantics::Set).unwrap()
        });
        let t_m = median(runs, || {
            evaluate(&f.instance, q.measure(), Semantics::Bag).unwrap()
        });
        let t_ans = median(runs, || answer(q, &f.instance).unwrap());
        println!(
            "| {} | {} | {} | {} | {} |",
            f.instance.len(),
            fmt(t_c),
            fmt(t_m),
            fmt(t_ans),
            f.ans.len()
        );
    }

    dump_metrics(metrics, "E9", &[]);

    // ---------------- E10: cube catalog ----------------
    let (e10_triples, e10_cubes) = if quick { (20_000, 60) } else { (100_000, 200) };
    println!("\n## E10 — cube catalog: indexed cost-based planning vs linear scan\n");
    println!("(strategy selection over a {e10_cubes}-cube workload; per-probe planning");
    println!("latency of the signature-indexed, cost-based catalog vs the pre-refactor");
    println!("linear rescan with per-cube signature recomputation)\n");
    let f = catalog_fixture(e10_triples, e10_cubes);
    let n_probes = f.probes.len();
    let t_indexed = median(runs, || {
        for p in &f.probes {
            black_box(f.session.explain_query(p));
        }
    });
    let t_linear = median(runs, || {
        for p in &f.probes {
            black_box(f.session.explain_query_linear(p));
        }
    });
    println!("| cubes | probes | indexed plan | linear scan | speedup |");
    println!("|---|---|---|---|---|");
    println!(
        "| {} | {} | {} | {} | {} |",
        f.session.len(),
        n_probes,
        fmt(t_indexed),
        fmt(t_linear),
        speedup(t_linear, t_indexed)
    );

    // Hit rate + budget: answer the probe set in an unbudgeted session and
    // in one holding a quarter of the unbudgeted working set, and verify
    // identical answers with peak memory under the budget. The timing
    // fixture doubles as the unbudgeted session (explain_query mutated
    // nothing).
    let mut unbounded = f;
    let probes = unbounded.probes.clone();
    let full_bytes = unbounded.session.catalog().resident_bytes();
    let max_single = (0..unbounded.session.len())
        .map(|i| unbounded.session.catalog().entry(i).stats().bytes)
        .max()
        .unwrap_or(0);
    let budget = (full_bytes / 4).max(2 * max_single);
    let mut budgeted = catalog_fixture_with_budget(e10_triples, e10_cubes, Some(budget));
    let mut answers_match = true;
    for p in &probes {
        let (hu, _) = unbounded.session.answer_query(p.clone()).unwrap();
        let (hb, _) = budgeted.session.answer_query(p.clone()).unwrap();
        answers_match &= unbounded
            .session
            .answer(hu)
            .same_cells(budgeted.session.answer(hb));
    }
    let cu = unbounded.session.catalog().counters();
    let cb = budgeted.session.catalog().counters();
    let hit_rate = 100.0 * cu.hits as f64 / (cu.hits + cu.misses).max(1) as f64;
    println!("\n| session | hit rate | evictions | rehydrations | peak resident | budget |");
    println!("|---|---|---|---|---|---|");
    println!(
        "| unbudgeted | {:.0}% ({}/{}) | {} | {} | {} KiB | — |",
        hit_rate,
        cu.hits,
        cu.hits + cu.misses,
        cu.evictions,
        cu.rehydrations,
        unbounded.session.catalog().peak_resident_bytes() / 1024,
    );
    println!(
        "| budgeted | {:.0}% ({}/{}) | {} | {} | {} KiB | {} KiB |",
        100.0 * cb.hits as f64 / (cb.hits + cb.misses).max(1) as f64,
        cb.hits,
        cb.hits + cb.misses,
        cb.evictions,
        cb.rehydrations,
        budgeted.session.catalog().peak_resident_bytes() / 1024,
        budget / 1024,
    );
    assert!(
        answers_match,
        "budgeted answers diverged from the unbudgeted session"
    );
    assert!(
        budgeted.session.catalog().peak_resident_bytes() <= budget,
        "budgeted session exceeded its byte budget"
    );
    println!("\nBudgeted answers verified identical to the unbudgeted session's;");
    println!("peak materialized bytes stayed under the configured budget.");
    dump_metrics(
        metrics,
        "E10",
        &[
            ("unbudgeted session", unbounded.session.metrics_snapshot()),
            ("budgeted session", budgeted.session.metrics_snapshot()),
        ],
    );

    // ---------------- E13: view-selection advisor ----------------
    println!("\n## E13 — view-selection advisor: advised vs reactive session\n");
    println!("(identical Zipf warmup through two equally-budgeted sessions; one runs");
    println!("advise(); both then answer fresh never-warmed dices, derivable only");
    println!("from an unrestricted lattice ancestor)\n");
    let e13_cfg = if quick {
        rdfcube_bench::AdvisorProtocolConfig {
            triples: 20_000,
            budget_bytes: 256 * 1024,
            ..rdfcube_bench::AdvisorProtocolConfig::default()
        }
    } else {
        rdfcube_bench::AdvisorProtocolConfig::default()
    };
    let e13 = rdfcube_bench::advisor_protocol(&e13_cfg);
    let rm = Duration::from_nanos(rdfcube_bench::AdvisorRun::median_nanos(&e13.reactive_nanos));
    let am = Duration::from_nanos(rdfcube_bench::AdvisorRun::median_nanos(&e13.advised_nanos));
    println!("| session | fresh-query median | hit rate | speedup |");
    println!("|---|---|---|---|");
    println!(
        "| reactive | {} | {:.0}% ({}/{}) | — |",
        fmt(rm),
        100.0 * rdfcube_bench::AdvisorRun::hit_rate(&e13.reactive_counters),
        e13.reactive_counters.hits,
        e13.reactive_counters.hits + e13.reactive_counters.misses,
    );
    println!(
        "| advised | {} | {:.0}% ({}/{}) | {} |",
        fmt(am),
        100.0 * rdfcube_bench::AdvisorRun::hit_rate(&e13.advised_counters),
        e13.advised_counters.hits,
        e13.advised_counters.hits + e13.advised_counters.misses,
        speedup(rm, am),
    );
    println!(
        "\nAdvisor: mined {} logged shapes ({} queries), considered {} lattice",
        e13.report.shapes, e13.report.log_queries, e13.report.considered,
    );
    println!(
        "ancestors, materialized {} ({} KiB) under a {} KiB budget.",
        e13.report.selected,
        e13.report.materialized_bytes / 1024,
        e13_cfg.budget_bytes / 1024,
    );
    assert!(
        e13.cells_identical,
        "advised answers diverged from the reactive session"
    );
    println!("Advised answers verified cell-identical to the reactive session's.");
    dump_metrics(metrics, "E13", &[]);

    // ---------------- E14: query-plane telemetry ----------------
    println!("\n## E14 — query-plane telemetry: EXPLAIN ANALYZE and cost-model calibration\n");
    println!("(one OLAP session answers a workload spanning every planner strategy;");
    println!("each answer is traced and shown as EXPLAIN ANALYZE, then the query log's");
    println!("predicted costs are calibrated against the observed wall times)\n");
    let e14_scale = if quick { 20_000 } else { 100_000 };
    let e14_cfg = BloggerConfig {
        multi_city_prob: 0.1,
        ..BloggerConfig::with_approx_triples(e14_scale)
    };
    // dcity is existential in this classifier, so the session can dice
    // (selection on ans), drill out dage (Algorithm 1) AND drill in
    // dcity (Algorithm 2) from the same base cube.
    let f14 = blogger_fixture_with(
        e14_cfg,
        "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
        AggFunc::Count,
    );
    let mut s14 = OlapSession::new(f14.instance.clone());
    let (h14, ex14, tr14) = s14.answer_traced(f14.eq.clone()).unwrap();
    println!("### base cube\n\n```");
    print!("{}", explain_analyze(&ex14, &tr14));
    println!("\n```");
    if !quick {
        assert!(
            tr14.stage_coverage() >= 0.90,
            "traced stages cover only {:.0}% of end-to-end wall time",
            tr14.stage_coverage() * 100.0
        );
    }
    let e14_ops: Vec<(&str, OlapOp)> = vec![
        ("dice (10% of the age domain)", e2_dice_op(10)),
        (
            "drill-out dage",
            OlapOp::DrillOut {
                dims: vec!["dage".into()],
            },
        ),
        (
            "drill-in dcity",
            OlapOp::DrillIn {
                var: "dcity".into(),
            },
        ),
    ];
    for (label, op) in &e14_ops {
        let (_, ex, tr) = s14.transform_traced(h14, op).unwrap();
        println!("\n### {label}\n\n```");
        print!("{}", explain_analyze(&ex, &tr));
        println!("\n```");
    }
    // Calibrate before re-asking the base query: the duplicate hit would
    // re-log the base shape under its hit strategy and drop the
    // from-scratch baseline the drift is normalized against.
    let calibration = CostModelReport::from_catalog(s14.catalog());
    let (_, ex_dup, tr_dup) = s14.answer_traced(f14.eq.clone()).unwrap();
    println!("\n### repeated base query (catalog hit)\n\n```");
    print!("{}", explain_analyze(&ex_dup, &tr_dup));
    println!("\n```");
    println!("\n### cost-model calibration\n\n```");
    print!("{calibration}");
    println!("```");
    if !calibration.is_empty() {
        println!(
            "\nLargest drift: {:.1}× — the planner's abstract unit over-charges that",
            calibration.max_drift()
        );
        println!("strategy by that factor relative to from-scratch evaluation (the");
        println!("recalibration itself stays with roadmap item 2).");
    }
    dump_metrics(metrics, "E14", &[("session", s14.metrics_snapshot())]);

    println!("\nAll rewriting outputs in this report were verified cell-for-cell against");
    println!("from-scratch evaluation by the test suite (propositions 1–3 as property tests).");
}
