//! E11 — concurrent serving: N client threads hammering one shared
//! session, plus intra-query BGP parallelism.
//!
//! The shared query plane ([`SharedSession`]) promises that any number of
//! threads can call `answer_query`/`snapshot` over one `Arc`-shared
//! instance and catalog without cloning data. This bench measures both
//! concurrency axes on the ~100k-triple blogger world:
//!
//! * `e11_concurrency/clients/{t}` — saturation style: a *fixed* pool of
//!   query operations (the E10 probe set, 16 rounds) is split round-robin
//!   across `t ∈ {1, 2, 4, 8}` client threads against one warmed
//!   [`SharedSession`]. Total work is constant, so near-linear scaling
//!   shows up as `time(t) ≈ time(1) / t`; the roadmap acceptance bar —
//!   ≥4× aggregate throughput at 8 threads vs 1 — reads as
//!   `time(8) ≤ time(1) / 4`. Before timing, every probe's cells are
//!   verified identical to an identically-seeded *serial*
//!   [`OlapSession`], so the speedup is over provably equal answers.
//! * `e11_concurrency/eval_threads/{t}` — intra-query: one thread
//!   evaluates the 3-dimensional classifier from scratch while the BGP
//!   pipeline partitions its binding table across `t` evaluation workers
//!   ([`set_eval_threads`]).
//!
//! **Reading the numbers on small machines:** both groups scale with
//! *physical cores*. On a 1-core container (the CI box this repo is
//! developed in) every `clients/{t}` time is expectedly flat — the
//! threads serialize on one core, and the bench then demonstrates that
//! contention overhead stays negligible rather than demonstrating
//! speedup. Run on a ≥8-core host to observe the scaling the roadmap
//! acceptance bar is stated against.
//!
//! The `e11_smoke` group is the CI guard: a miniature world, 4 client
//! threads racing one shared session with cells verified against a serial
//! run every iteration, plus a parallel-vs-serial BGP identity check.

use criterion::{criterion_group, criterion_main, Criterion};
use rdfcube_bench::{catalog_fixture, CLASSIFIER_3D};
use rdfcube_core::{ExtendedQuery, SharedSession};
use rdfcube_engine::{evaluate, parse_query, set_eval_threads, Semantics};
use std::hint::black_box;

/// Splits `ops` round-robin across `threads` scoped workers, each
/// answering its share against the shared plane and folding the answered
/// cube sizes (forcing a real snapshot read per op).
fn run_clients(shared: &SharedSession, ops: &[ExtendedQuery], threads: usize) -> usize {
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|k| {
                s.spawn(move || {
                    let mut cells = 0usize;
                    for q in ops.iter().skip(k).step_by(threads) {
                        let (h, _) = shared.answer_query(q.clone()).expect("shared answer");
                        cells += shared.snapshot(h).expect("snapshot").answer().len();
                    }
                    cells
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client thread panicked"))
            .sum()
    })
}

fn clients(c: &mut Criterion) {
    // Two identically-seeded fixtures: one stays a serial mutation-plane
    // session (the ground truth), the other becomes the shared plane.
    let mut serial = catalog_fixture(100_000, 60);
    let shared_fixture = catalog_fixture(100_000, 60);
    let probes = shared_fixture.probes.clone();
    let shared = shared_fixture.session.into_shared();

    // Warm the shared catalog and verify every probe's cells against the
    // serial session before any clock starts.
    for p in &probes {
        let (sh, _) = shared.answer_query(p.clone()).expect("warm-up answer");
        let (eh, _) = serial
            .session
            .answer_query(p.clone())
            .expect("serial answer");
        assert!(
            shared
                .snapshot(sh)
                .expect("warm-up snapshot")
                .answer()
                .same_cells(serial.session.answer(eh)),
            "shared plane diverged from the serial session during warm-up"
        );
    }

    // A fixed pool of operations, independent of the thread count.
    let ops: Vec<ExtendedQuery> = std::iter::repeat_with(|| probes.iter().cloned())
        .take(16)
        .flatten()
        .collect();

    let mut group = c.benchmark_group("e11_concurrency");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for t in [1usize, 2, 4, 8] {
        group.bench_function(format!("clients/{t}"), |b| {
            b.iter(|| black_box(run_clients(&shared, &ops, t)))
        });
    }
    group.finish();
}

fn eval_threads(c: &mut Criterion) {
    let mut instance = rdfcube_datagen::generate_instance(
        &rdfcube_datagen::BloggerConfig::with_approx_triples(100_000),
    );
    let q = parse_query(CLASSIFIER_3D, instance.dict_mut()).expect("classifier parses");
    let serial_rows = evaluate(&instance, &q, Semantics::Set).expect("eval").len();

    let mut group = c.benchmark_group("e11_concurrency");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for t in [1usize, 2, 4, 8] {
        set_eval_threads(t);
        group.bench_function(format!("eval_threads/{t}"), |b| {
            b.iter(|| {
                let rows = evaluate(&instance, &q, Semantics::Set).expect("eval");
                assert_eq!(rows.len(), serial_rows);
                black_box(rows.len())
            })
        });
    }
    set_eval_threads(1);
    group.finish();
}

fn smoke(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_smoke");
    group.sample_size(2);
    group.warm_up_time(std::time::Duration::from_millis(50));
    group.measurement_time(std::time::Duration::from_millis(200));

    let mut serial = catalog_fixture(4_000, 20);
    let shared_fixture = catalog_fixture(4_000, 20);
    let probes = shared_fixture.probes.clone();
    let shared = shared_fixture.session.into_shared();
    let serial_answers: Vec<_> = probes
        .iter()
        .map(|p| {
            let (h, _) = serial
                .session
                .answer_query(p.clone())
                .expect("serial answer");
            (p.clone(), h)
        })
        .collect();

    group.bench_function("clients_4_verified", |b| {
        b.iter(|| {
            let total = run_clients(&shared, &probes, 4);
            for (p, sh) in &serial_answers {
                let (h, _) = shared.answer_query(p.clone()).expect("shared answer");
                assert!(
                    shared
                        .snapshot(h)
                        .expect("snapshot")
                        .answer()
                        .same_cells(serial.session.answer(*sh)),
                    "shared cells diverged from the serial session"
                );
            }
            black_box(total)
        })
    });

    group.bench_function("parallel_eval_identity", |b| {
        let mut instance = rdfcube_datagen::generate_instance(
            &rdfcube_datagen::BloggerConfig::with_approx_triples(4_000),
        );
        let q = parse_query(CLASSIFIER_3D, instance.dict_mut()).expect("classifier parses");
        set_eval_threads(1);
        let serial_rows = evaluate(&instance, &q, Semantics::Set).expect("serial eval");
        b.iter(|| {
            set_eval_threads(2);
            let par = evaluate(&instance, &q, Semantics::Set).expect("parallel eval");
            set_eval_threads(1);
            assert_eq!(
                par.len(),
                serial_rows.len(),
                "parallel eval changed the row count"
            );
            black_box(par.len())
        })
    });

    group.finish();
}

criterion_group!(benches, clients, eval_threads, smoke);
criterion_main!(benches);
