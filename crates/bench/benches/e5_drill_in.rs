//! E5 — DRILL-IN: Algorithm 2 (`q_aux` on the instance, joined with
//! `pres(Q)`) versus from-scratch evaluation of `Q_DRILL-IN`, across video-
//! world scales. The auxiliary query touches only the website subgraph, so
//! Algorithm 2's advantage grows with the fact (video) population.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfcube_bench::{blogger_fixture_with, video_fixture};
use rdfcube_core::{apply, rewrite, OlapOp};
use rdfcube_datagen::BloggerConfig;
use rdfcube_engine::AggFunc;
use std::hint::black_box;

const VIDEO_SCALES: [usize; 4] = [1_000, 5_000, 20_000, 50_000];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_drill_in");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n_videos in VIDEO_SCALES {
        let f = video_fixture(n_videos);
        let d3 = f.eq.query().classifier().vars().id("d3").expect("?d3");
        let drilled = apply(&f.eq, &OlapOp::DrillIn { var: "d3".into() }).expect("drill-in");

        group.bench_with_input(
            BenchmarkId::new("algorithm2", n_videos),
            &n_videos,
            |b, _| {
                b.iter(|| {
                    black_box(rewrite::drill_in_from_pres(
                        f.eq.query(),
                        &f.pres,
                        d3,
                        &f.instance,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("from_scratch", n_videos),
            &n_videos,
            |b, _| b.iter(|| black_box(rewrite::from_scratch(&drilled, &f.instance).unwrap())),
        );
    }

    // E5b: best case for Algorithm 2 — the new dimension attaches directly
    // to the fact, so the auxiliary query is one triple pattern.
    let cfg = BloggerConfig {
        multi_city_prob: 0.1,
        ..BloggerConfig::with_approx_triples(100_000)
    };
    let f = blogger_fixture_with(
        cfg,
        "c(?x, ?dage) :- ?x rdf:type Blogger, ?x hasAge ?dage, ?x livesIn ?dcity",
        AggFunc::Count,
    );
    let dcity =
        f.eq.query()
            .classifier()
            .vars()
            .id("dcity")
            .expect("?dcity");
    let drilled = apply(
        &f.eq,
        &OlapOp::DrillIn {
            var: "dcity".into(),
        },
    )
    .expect("drill-in dcity");
    group.bench_function("algorithm2_1triple_aux/100000", |b| {
        b.iter(|| {
            black_box(rewrite::drill_in_from_pres(
                f.eq.query(),
                &f.pres,
                dcity,
                &f.instance,
            ))
        })
    });
    group.bench_function("from_scratch_1triple_aux/100000", |b| {
        b.iter(|| black_box(rewrite::from_scratch(&drilled, &f.instance).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
