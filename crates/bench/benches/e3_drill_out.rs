//! E3 — DRILL-OUT: Algorithm 1 over `pres(Q)` versus from-scratch, across
//! scales and cube dimensionality (2-D age×city and 3-D age×city×site).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfcube_bench::{blogger_fixture, blogger_fixture_with, CLASSIFIER_3D, SCALES};
use rdfcube_core::{apply, rewrite, OlapOp};
use rdfcube_datagen::BloggerConfig;
use rdfcube_engine::AggFunc;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_drill_out");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // 2-D sweep over scale: drill out the age dimension.
    for scale in SCALES {
        let f = blogger_fixture(scale, 0.1);
        let drilled = apply(
            &f.eq,
            &OlapOp::DrillOut {
                dims: vec!["dage".into()],
            },
        )
        .expect("drill-out");
        group.bench_with_input(BenchmarkId::new("algorithm1_2d", scale), &scale, |b, _| {
            b.iter(|| {
                black_box(rewrite::drill_out_from_pres(
                    &f.pres,
                    &[0],
                    f.instance.dict(),
                ))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("from_scratch_2d", scale),
            &scale,
            |b, _| b.iter(|| black_box(rewrite::from_scratch(&drilled, &f.instance).unwrap())),
        );
    }

    // 3-D at a fixed scale: drill out the (multi-valued) site dimension.
    let cfg = BloggerConfig {
        multi_city_prob: 0.1,
        ..BloggerConfig::with_approx_triples(100_000)
    };
    let f3 = blogger_fixture_with(cfg, CLASSIFIER_3D, AggFunc::Count);
    let drilled = apply(
        &f3.eq,
        &OlapOp::DrillOut {
            dims: vec!["dsite".into()],
        },
    )
    .expect("drill-out 3d");
    group.bench_function("algorithm1_3d/100000", |b| {
        b.iter(|| {
            black_box(rewrite::drill_out_from_pres(
                &f3.pres,
                &[2],
                f3.instance.dict(),
            ))
        })
    });
    group.bench_function("from_scratch_3d/100000", |b| {
        b.iter(|| black_box(rewrite::from_scratch(&drilled, &f3.instance).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
