//! E14 — observability overhead of the query-plane telemetry.
//!
//! Times the same end-to-end `answer()` path E9 measures on the
//! ~100k-triple blogger world, in two configurations:
//!
//! * `answer_untraced_100k` — no trace collector installed; every span
//!   site pays exactly one relaxed atomic load plus a branch (the
//!   acceptance bar is ≤3% overhead versus E9's `answer_100k`);
//! * `answer_traced_100k` — the run wrapped in
//!   `trace_begin`/`trace_end`, so every span records wall time, row
//!   counts and attributes into the thread-local collector (bar: ≤15%).
//!
//! The global metrics sink (BGP step/shard counters, delta-merge
//! counters) is always on in both configurations — its relaxed
//! `fetch_add`s are part of the untraced baseline by design.
//!
//! A separate `e14_smoke` group runs the traced pipeline on a small
//! world with a minimal sample budget; CI executes only that group to
//! guard the bench against bit-rot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfcube_bench::blogger_fixture;
use rdfcube_core::answer;
use rdfcube_obs::{trace_begin, trace_end};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = blogger_fixture(100_000, 0.1);
    let n = f.instance.len();
    let q = f.eq.query();

    let mut group = c.benchmark_group("e14_trace");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_with_input(BenchmarkId::new("answer_untraced_100k", n), &n, |b, _| {
        b.iter(|| black_box(answer(q, &f.instance).unwrap()))
    });

    group.bench_with_input(BenchmarkId::new("answer_traced_100k", n), &n, |b, _| {
        b.iter(|| {
            let began = trace_begin("answer_query");
            let cube = black_box(answer(q, &f.instance).unwrap());
            if began {
                black_box(trace_end());
            }
            cube
        })
    });

    group.finish();
}

fn smoke(c: &mut Criterion) {
    let f = blogger_fixture(5_000, 0.1);
    let q = f.eq.query();

    let mut group = c.benchmark_group("e14_smoke");
    group.sample_size(2);
    group.warm_up_time(std::time::Duration::from_millis(50));
    group.measurement_time(std::time::Duration::from_millis(200));

    group.bench_function("answer_traced_5k", |b| {
        b.iter(|| {
            let began = trace_begin("answer_query");
            let cube = black_box(answer(q, &f.instance).unwrap());
            if began {
                black_box(trace_end());
            }
            cube
        })
    });

    group.finish();
}

criterion_group!(benches, bench, smoke);
criterion_main!(benches);
