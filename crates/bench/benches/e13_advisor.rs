//! E13 — workload-driven view selection: an advised session vs. a purely
//! reactive one, at the *same* byte budget, on the same Zipf workload.
//!
//! The protocol ([`rdfcube_bench::advisor_protocol`]) stages the
//! ~100k-triple blogger world and replays an identical Zipf-skewed warmup
//! of 144 distinct-but-derivable slice/dice/drill-out variants through
//! two budgeted sessions. The budget (1.25 MiB) is deliberately too small
//! for the warmup pool to stay resident, so both catalogs keep evicting —
//! the regime the advisor exists for. One session then runs
//! [`OlapSession::advise`]: it mines the query log, enumerates the
//! lattice ancestors of the logged shapes (drill-out closures plus their
//! Σ-unrestricted generalizations), and greedily materializes the best
//! benefit-per-byte set under the budget. Both sessions finally answer 24
//! *fresh* single-value dices in a value region disjoint from the warmup:
//! none is derivable from any warmup variant or from another measured
//! query, so the phase isolates exactly what the advisor pre-built.
//! Answers are verified cell-identical between the sessions on every run.
//!
//! A representative 1-core container run: the advisor mines 118 logged
//! shapes, considers 4 ancestors and materializes 3 (both 1-D apexes plus
//! the 2-D apex, ~1.2 MiB); the advised session then serves all 24 fresh
//! dices from the apexes via σ-selection (`SelectionOnAns`, 24/24 catalog
//! hits) at a **0.34 ms** median while the reactive session pays
//! from-scratch evaluation (0/24 hits) at **2.7 ms** — an **8×** median
//! end-to-end speedup at equal memory budget (roadmap bar: ≥2×).
//!
//! The `e13_smoke` group is the CI guard: a miniature world and budget
//! run the full protocol each iteration with the cell-identity assertion
//! live.
//!
//! [`OlapSession::advise`]: rdfcube_core::OlapSession::advise

use criterion::{criterion_group, criterion_main, Criterion};
use rdfcube_bench::{advisor_protocol, AdvisorProtocolConfig, AdvisorRun};
use std::hint::black_box;

fn print_summary(label: &str, run: &AdvisorRun) {
    let rm = AdvisorRun::median_nanos(&run.reactive_nanos);
    let am = AdvisorRun::median_nanos(&run.advised_nanos);
    println!(
        "e13 {label}: reactive median {:.3} ms (hit rate {:.2}) vs advised median {:.3} ms \
         (hit rate {:.2}) — speedup {:.2}x",
        rm as f64 / 1e6,
        AdvisorRun::hit_rate(&run.reactive_counters),
        am as f64 / 1e6,
        AdvisorRun::hit_rate(&run.advised_counters),
        rm as f64 / am.max(1) as f64,
    );
    println!(
        "e13 {label}: mined {} shapes over {} logged queries, considered {} ancestors, \
         materialized {} ({} bytes)",
        run.report.shapes,
        run.report.log_queries,
        run.report.considered,
        run.report.selected,
        run.report.materialized_bytes,
    );
}

fn bench(c: &mut Criterion) {
    let cfg = AdvisorProtocolConfig::default();

    // The timed protocol: warmup replay + advise + measured phase, end to
    // end (dominated by the warmup's from-scratch evaluations). The
    // headline advised-vs-reactive medians are printed from the first
    // iteration; everything runs lazily inside the closure so a filtered
    // CI run (`-- e13_smoke`) never pays for the 100k world.
    let mut group = c.benchmark_group("e13_advisor");
    group.sample_size(2);
    group.warm_up_time(std::time::Duration::from_millis(50));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("protocol_100k", |b| {
        b.iter(|| {
            let run = advisor_protocol(&cfg);
            assert!(
                run.cells_identical,
                "advised answers diverged from reactive"
            );
            static SUMMARY: std::sync::Once = std::sync::Once::new();
            SUMMARY.call_once(|| print_summary("100k", &run));
            black_box(run.report.selected)
        })
    });
    group.finish();
}

fn smoke(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_smoke");
    group.sample_size(2);
    group.warm_up_time(std::time::Duration::from_millis(50));
    group.measurement_time(std::time::Duration::from_millis(200));

    let cfg = AdvisorProtocolConfig {
        triples: 4_000,
        budget_bytes: 64 * 1024,
        warmup_pool: 12,
        warmup_len: 40,
        measured: 6,
        ..AdvisorProtocolConfig::default()
    };
    group.bench_function("protocol_4k", |b| {
        b.iter(|| {
            let run = advisor_protocol(&cfg);
            assert!(run.cells_identical, "advised answers diverged");
            assert_eq!(run.advised_nanos.len(), cfg.measured);
            black_box(run.report.log_queries)
        })
    });
    group.finish();
}

criterion_group!(benches, bench, smoke);
criterion_main!(benches);
