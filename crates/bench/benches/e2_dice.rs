//! E2 — DICE selectivity sweep at a fixed scale: the rewriting's cost is
//! flat in selectivity (one pass over `ans(Q)`), while from-scratch pays the
//! full classifier/measure evaluation regardless of how much survives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfcube_bench::{blogger_fixture, e2_dice_op};
use rdfcube_core::{apply, rewrite};
use std::hint::black_box;

const SCALE: usize = 100_000;
const SELECTIVITIES: [usize; 4] = [1, 10, 50, 100];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_dice");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let f = blogger_fixture(SCALE, 0.1);
    for pct in SELECTIVITIES {
        let diced = apply(&f.eq, &e2_dice_op(pct)).expect("dice applies");
        group.bench_with_input(BenchmarkId::new("rewrite_sigma_ans", pct), &pct, |b, _| {
            b.iter(|| {
                black_box(rewrite::dice_from_ans(
                    &f.ans,
                    diced.sigma(),
                    f.instance.dict(),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("from_scratch", pct), &pct, |b, _| {
            b.iter(|| black_box(rewrite::from_scratch(&diced, &f.instance).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
