//! E12 — subject-hash sharded storage: bulk-load scaling and end-to-end
//! answering at 1 vs N shards.
//!
//! The sharded store ([`Graph::from_triples_sharded`]) hash-partitions
//! triples by subject into N independent CSR shards, each with its own
//! SPO/POS/OSP indexes and delta buffer; the bulk loader scatters the
//! batch and sorts the shards in parallel, and the BGP evaluator runs
//! per-shard probes with an in-order merge (bit-identical rows to the
//! flat store, verified here before any clock starts). Σ slice/dice
//! constants are pushed into the probe plans, so shards whose statistics
//! prove them empty for the constant shape are skipped entirely.
//!
//! Groups:
//!
//! * `e12_sharded/bulk_load/{n}` — rebuild the ~100k-triple blogger world
//!   from a staged triple list at n ∈ {1, 4, 8} shards. The n = 1 time is
//!   the flat baseline; the sharded builds pay one extra scatter pass and
//!   then sort N four-times-smaller runs (in parallel on multi-core).
//! * `e12_sharded/answer/{full,diced}/s{n}_t{t}` — end-to-end
//!   `answer()` of the Example 1 cube (full) and its Σ-sliced variant
//!   (diced, `dage = 30` — the predicate-pushdown path) at
//!   (shards, eval threads) ∈ {(1,1), (8,1), (8,8)}.
//! * `e12_large` — the 1M-triple world ([`BloggerConfig::large_world`]):
//!   one 8-shard bulk load plus full and diced answers at 8 threads.
//!
//! **Reading the numbers on small machines:** like E11, the parallel
//! paths scale with *physical cores*. On the 1-core container this repo
//! is developed in, a representative run measured `bulk_load/1` ≈
//! 10.3 ms vs `bulk_load/8` ≈ 11.7 ms (the scatter pass and 8 smaller
//! sorts cost ~13% with no cores to win them back), and
//! `answer/full/s1_t1` ≈ 3.2 ms vs `s8_t1` ≈ 4.3 ms / `s8_t8` ≈ 5.7 ms —
//! the k-way shard merges and per-shard workers are pure overhead when
//! they serialize on one core. The n = 1 configuration *is* the flat
//! store (subject routing short-circuits to shard 0 and every read
//! delegates to the single CSR), so the flat-overhead budget of the
//! roadmap (≤10% on the 100k world) is met by construction and the
//! measured `s1_t1` times match the pre-sharding E9 path within noise.
//! On a ≥8-core host the per-shard sorts and the per-shard probe
//! workers run concurrently, which is where the ≥2× bulk-load/eval
//! speedup the roadmap states for N shards vs 1 materializes. The diced
//! answers show the pushdown win on *any* core count: `answer/diced/*`
//! ≈ 1.25 ms vs ≈ 3.2 ms full at 100k (and ≈ 30 ms vs ≈ 58 ms at 1M) —
//! the Σ constant prunes the binding table at the first probe and skips
//! provably-empty shards instead of filtering after aggregation.
//!
//! The `e12_smoke` group is the CI guard: a ~20k world answered through
//! an 8-shard, 4-thread session with cells verified identical to a flat
//! serial run every iteration, plus an exact `triples()`-sequence check
//! of the sharded bulk load.

use criterion::{criterion_group, criterion_main, Criterion};
use rdfcube_bench::e1_slice_op;
use rdfcube_core::{apply, rewrite, AnalyticalQuery, ExtendedQuery};
use rdfcube_datagen::{BloggerConfig, EXAMPLE1_CLASSIFIER, EXAMPLE1_MEASURE};
use rdfcube_engine::{set_eval_threads, AggFunc};
use rdfcube_rdf::{Dictionary, Graph, Triple};
use std::hint::black_box;
use std::sync::OnceLock;

/// A staged world: the dictionary and triple list to (re)load from, plus
/// the Example 1 query and its Σ-sliced (dice `dage = 30`) variant.
struct World {
    dict: Dictionary,
    triples: Vec<Triple>,
    eq: ExtendedQuery,
    diced: ExtendedQuery,
}

fn stage(cfg: &BloggerConfig) -> World {
    let mut instance = rdfcube_datagen::generate_instance(cfg);
    let q = AnalyticalQuery::parse(
        EXAMPLE1_CLASSIFIER,
        EXAMPLE1_MEASURE,
        AggFunc::Count,
        instance.dict_mut(),
    )
    .expect("Example 1 parses");
    let eq = ExtendedQuery::from_query(q);
    let diced = apply(&eq, &e1_slice_op()).expect("slice applies");
    World {
        dict: instance.dict().clone(),
        triples: instance.triples().collect(),
        eq,
        diced,
    }
}

/// The ~100k-triple world, staged lazily so the CI smoke filter never
/// pays for it.
fn mid_world() -> &'static World {
    static MID: OnceLock<World> = OnceLock::new();
    MID.get_or_init(|| {
        stage(&BloggerConfig {
            multi_city_prob: 0.1,
            ..BloggerConfig::with_approx_triples(100_000)
        })
    })
}

/// The 1M-triple world, also staged lazily.
fn large_world() -> &'static World {
    static LARGE: OnceLock<World> = OnceLock::new();
    LARGE.get_or_init(|| stage(&BloggerConfig::large_world()))
}

fn build(w: &World, n_shards: usize) -> Graph {
    Graph::from_triples_sharded(w.dict.clone(), w.triples.clone(), n_shards)
}

fn bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_sharded");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for n in [1usize, 4, 8] {
        group.bench_function(format!("bulk_load/{n}"), |b| {
            let w = mid_world();
            b.iter(|| black_box(build(w, n).len()))
        });
    }
    group.finish();
}

fn answer(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_sharded");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    // Lazily built so `-- e12_smoke` never stages the 100k world. The
    // closure set also verifies, once, that the sharded store answers
    // bit-identically to the flat one before any clock starts.
    let mut stores: Option<(Graph, Graph)> = None;
    for (label, n_shards, threads) in [("s1_t1", 1usize, 1usize), ("s8_t1", 8, 1), ("s8_t8", 8, 8)]
    {
        for diced in [false, true] {
            let shape = if diced { "diced" } else { "full" };
            group.bench_function(format!("answer/{shape}/{label}"), |b| {
                let w = mid_world();
                let (flat, sharded) = stores.get_or_insert_with(|| {
                    let flat = build(w, 1);
                    let sharded = build(w, 8);
                    for q in [&w.eq, &w.diced] {
                        let a = rewrite::from_scratch(q, &flat).expect("flat answer");
                        let b = rewrite::from_scratch(q, &sharded).expect("sharded answer");
                        assert!(a.same_cells(&b), "sharded answer diverged from flat");
                    }
                    (flat, sharded)
                });
                let g = if n_shards == 1 { &*flat } else { &*sharded };
                let q = if diced { &w.diced } else { &w.eq };
                set_eval_threads(threads);
                b.iter(|| black_box(rewrite::from_scratch(q, g).expect("answer").len()));
                set_eval_threads(1);
            });
        }
    }
    group.finish();
}

fn large(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_large");
    group.sample_size(2);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(5));

    group.bench_function("bulk_load/8", |b| {
        let w = large_world();
        b.iter(|| black_box(build(w, 8).len()))
    });

    let mut store: Option<Graph> = None;
    for diced in [false, true] {
        let shape = if diced { "diced" } else { "full" };
        group.bench_function(format!("answer/{shape}/s8_t8"), |b| {
            let w = large_world();
            let g = store.get_or_insert_with(|| build(w, 8));
            let q = if diced { &w.diced } else { &w.eq };
            set_eval_threads(8);
            b.iter(|| black_box(rewrite::from_scratch(q, g).expect("answer").len()));
            set_eval_threads(1);
        });
    }
    group.finish();
}

fn smoke(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_smoke");
    group.sample_size(2);
    group.warm_up_time(std::time::Duration::from_millis(50));
    group.measurement_time(std::time::Duration::from_millis(200));

    let w = stage(&BloggerConfig::with_approx_triples(20_000));
    let flat = build(&w, 1);
    let sharded = build(&w, 8);
    assert_eq!(sharded.shard_count(), 8);
    // The sharded bulk load must reproduce the flat enumeration exactly.
    assert!(
        flat.triples().eq(sharded.triples()),
        "sharded bulk load reordered the triple sequence"
    );

    group.bench_function("sharded_answers_match_flat", |b| {
        b.iter(|| {
            let mut cells = 0usize;
            for q in [&w.eq, &w.diced] {
                set_eval_threads(1);
                let serial = rewrite::from_scratch(q, &flat).expect("flat serial answer");
                set_eval_threads(4);
                let par = rewrite::from_scratch(q, &sharded).expect("sharded answer");
                set_eval_threads(1);
                assert!(
                    par.same_cells(&serial),
                    "8-shard/4-thread cells diverged from the flat serial run"
                );
                cells += par.len();
            }
            black_box(cells)
        })
    });

    group.finish();
}

criterion_group!(benches, bulk_load, answer, large, smoke);
criterion_main!(benches);
