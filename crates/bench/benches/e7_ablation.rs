//! E7 — ablations of this implementation's own design choices:
//!
//! * greedy selectivity-based join ordering versus declaration order, on a
//!   query whose selective pattern is written last (the worst case the
//!   optimizer exists for);
//! * Algorithm 1 versus from-scratch as multi-valued fan-out grows — the
//!   RDF-specific knob the paper's algorithms are designed around.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfcube_bench::blogger_fixture;
use rdfcube_core::rewrite;
use rdfcube_engine::{evaluate, evaluate_in_order, parse_query, Semantics};
use std::hint::black_box;

const SCALE: usize = 100_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // (a) join ordering: selective pattern (postedOn site0) written last.
    let mut f = blogger_fixture(SCALE, 0.1);
    let adversarial = parse_query(
        "q(?x, ?dcity) :- ?x wrotePost ?p, ?x livesIn ?dcity, ?p postedOn site1",
        f.instance.dict_mut(),
    )
    .expect("ablation query parses");
    group.bench_function("join_order_greedy/100000", |b| {
        b.iter(|| black_box(evaluate(&f.instance, &adversarial, Semantics::Set).unwrap()))
    });
    group.bench_function("join_order_declared/100000", |b| {
        b.iter(|| black_box(evaluate_in_order(&f.instance, &adversarial, Semantics::Set).unwrap()))
    });

    // (c) Σ push-down vs post-filtering on a selective dice.
    let f2 = blogger_fixture(SCALE, 0.1);
    let diced = rdfcube_core::apply(&f2.eq, &rdfcube_bench::e2_dice_op(1)).expect("dice applies");
    group.bench_function("sigma_pushdown/100000", |b| {
        b.iter(|| black_box(diced.classifier_relation(&f2.instance).unwrap()))
    });
    group.bench_function("sigma_postfilter/100000", |b| {
        b.iter(|| black_box(diced.classifier_relation_postfilter(&f2.instance).unwrap()))
    });

    // (b) multi-valuedness fan-out: drill out the city dimension.
    for prob_pct in [0usize, 30, 60] {
        let f = blogger_fixture(SCALE, prob_pct as f64 / 100.0);
        group.bench_with_input(
            BenchmarkId::new("drillout_alg1_mv", prob_pct),
            &prob_pct,
            |b, _| {
                b.iter(|| {
                    black_box(rewrite::drill_out_from_pres(
                        &f.pres,
                        &[1],
                        f.instance.dict(),
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("drillout_scratch_mv", prob_pct),
            &prob_pct,
            |b, _| {
                let drilled = rdfcube_core::apply(
                    &f.eq,
                    &rdfcube_core::OlapOp::DrillOut {
                        dims: vec!["dcity".into()],
                    },
                )
                .expect("drill-out applies");
                b.iter(|| black_box(rewrite::from_scratch(&drilled, &f.instance).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
