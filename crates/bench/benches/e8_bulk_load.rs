//! E8 — bulk loading vs per-triple insertion into the CSR triple store.
//!
//! Loads a generated ≥100k-triple blogger world two ways from identical
//! inputs (the same pre-encoded dictionary and triple list):
//!
//! * `bulk_from_triples` — [`Graph::from_triples`], which sorts + dedups
//!   each SPO/POS/OSP column set once;
//! * `per_triple_insert` — the incremental [`Graph::insert_ids`] path, which
//!   routes through the delta buffer and its periodic merges.
//!
//! The roadmap acceptance bar for the storage rework is bulk ≥ 2× faster.
//! Both arms clone the dictionary and triple list per iteration, so the
//! (identical) setup cost is included on both sides of the ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfcube_datagen::{generate_instance, BloggerConfig};
use rdfcube_rdf::{Graph, Triple};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = BloggerConfig::with_approx_triples(100_000);
    let world = generate_instance(&cfg);
    let dict = world.dict().clone();
    let triples: Vec<Triple> = world.triples().collect();
    let n = triples.len();

    let mut group = c.benchmark_group("e8_bulk_load");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_with_input(BenchmarkId::new("bulk_from_triples", n), &n, |b, _| {
        b.iter(|| black_box(Graph::from_triples(dict.clone(), triples.iter().copied())))
    });

    group.bench_with_input(BenchmarkId::new("per_triple_insert", n), &n, |b, _| {
        b.iter(|| {
            let mut g = Graph::from_triples(dict.clone(), std::iter::empty());
            for t in &triples {
                g.insert_ids(t.s, t.p, t.o);
            }
            black_box(g)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
