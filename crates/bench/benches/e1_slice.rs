//! E1 — SLICE: σ over the materialized `ans(Q)` (Proposition 1) versus
//! from-scratch evaluation of `Q_SLICE` on the instance, across dataset
//! scales. Paper claim: the rewriting wins by orders of magnitude and its
//! cost tracks |ans(Q)|, not |I|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfcube_bench::{blogger_fixture, e1_slice_op, SCALES};
use rdfcube_core::{apply, rewrite};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_slice");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scale in SCALES {
        let f = blogger_fixture(scale, 0.1);
        let sliced = apply(&f.eq, &e1_slice_op()).expect("slice applies");

        group.bench_with_input(
            BenchmarkId::new("rewrite_sigma_ans", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    black_box(rewrite::dice_from_ans(
                        &f.ans,
                        sliced.sigma(),
                        f.instance.dict(),
                    ))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("from_scratch", scale), &scale, |b, _| {
            b.iter(|| black_box(rewrite::from_scratch(&sliced, &f.instance).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
