//! E9 — end-to-end analytical-query evaluation and pure-BGP matching.
//!
//! Times the query pipeline above the store on the ~100k-triple blogger
//! world:
//!
//! * `answer_100k` — the whole `answer()` path: classifier (set semantics)
//!   + measure (bag semantics) + classifier ⋈ measure + γ aggregation;
//! * `bgp_classifier_100k` — the 3-pattern classifier alone under set
//!   semantics (binding propagation + δ);
//! * `bgp_measure_100k` — the 3-pattern measure alone under bag semantics
//!   (binding propagation only, no dedup).
//!
//! The roadmap acceptance bar for the flat-buffer pipeline rework is a ≥2×
//! median speedup on `answer_100k` versus the row-at-a-time evaluator.
//!
//! A separate `e9_smoke` group runs the same pipeline on a small world with
//! a minimal sample budget; CI executes only that group (via the vendored
//! criterion filter) to guard the bench against bit-rot without paying for
//! a full measurement run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfcube_bench::blogger_fixture;
use rdfcube_core::answer;
use rdfcube_engine::{evaluate, Semantics};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = blogger_fixture(100_000, 0.1);
    let n = f.instance.len();
    let q = f.eq.query();

    let mut group = c.benchmark_group("e9_eval");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_with_input(BenchmarkId::new("answer_100k", n), &n, |b, _| {
        b.iter(|| black_box(answer(q, &f.instance).unwrap()))
    });

    group.bench_with_input(BenchmarkId::new("bgp_classifier_100k", n), &n, |b, _| {
        b.iter(|| black_box(evaluate(&f.instance, q.classifier(), Semantics::Set).unwrap()))
    });

    group.bench_with_input(BenchmarkId::new("bgp_measure_100k", n), &n, |b, _| {
        b.iter(|| black_box(evaluate(&f.instance, q.measure(), Semantics::Bag).unwrap()))
    });

    group.finish();
}

fn smoke(c: &mut Criterion) {
    let f = blogger_fixture(5_000, 0.1);
    let q = f.eq.query();

    let mut group = c.benchmark_group("e9_smoke");
    group.sample_size(2);
    group.warm_up_time(std::time::Duration::from_millis(50));
    group.measurement_time(std::time::Duration::from_millis(200));

    group.bench_function("answer_5k", |b| {
        b.iter(|| black_box(answer(q, &f.instance).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench, smoke);
criterion_main!(benches);
