//! E4 — the Example 5 trap, timed: Algorithm 1 versus the (incorrect) naive
//! re-aggregation of `ans(Q)` cells, as the multi-valuedness of the removed
//! dimension grows. The naive method is faster — `ans(Q)` is much smaller
//! than `pres(Q)` — which is exactly why the paper must argue correctness,
//! not speed, against it. The `report` binary prints the wrong-cell
//! percentages that complete this experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfcube_bench::blogger_fixture;
use rdfcube_core::rewrite;
use std::hint::black_box;

const SCALE: usize = 100_000;
const MULTI_VALUE_PROBS: [f64; 4] = [0.0, 0.1, 0.3, 0.5];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_drillout_error");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for prob in MULTI_VALUE_PROBS {
        let pct = (prob * 100.0) as usize;
        // Drill out the multi-valued city dimension (index 1).
        let f = blogger_fixture(SCALE, prob);
        group.bench_with_input(BenchmarkId::new("algorithm1", pct), &pct, |b, _| {
            b.iter(|| {
                black_box(rewrite::drill_out_from_pres(
                    &f.pres,
                    &[1],
                    f.instance.dict(),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_ans_based", pct), &pct, |b, _| {
            b.iter(|| black_box(rewrite::drill_out_from_ans(&f.ans, &[1], f.instance.dict())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
