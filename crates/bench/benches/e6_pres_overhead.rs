//! E6 — what does materializing `pres(Q)` cost on top of just answering
//! `Q`? The paper argues pres is (nearly) free because it is the input of
//! the final aggregation anyway (Equation 1); this benchmark measures the
//! actual overhead across scales. The `report` binary adds the size side:
//! |pres(Q)| rows and bytes versus |I| triples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdfcube_bench::{blogger_fixture, SCALES};
use rdfcube_core::{rewrite, PartialResult};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_pres_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for scale in SCALES {
        let f = blogger_fixture(scale, 0.1);
        group.bench_with_input(BenchmarkId::new("ans_only", scale), &scale, |b, _| {
            b.iter(|| black_box(f.eq.answer(&f.instance).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("ans_plus_pres", scale), &scale, |b, _| {
            b.iter(|| black_box(rewrite::from_scratch_with_pres(&f.eq, &f.instance).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("pres_to_ans_eq3", scale),
            &scale,
            |b, _| b.iter(|| black_box(f.pres.to_cube(f.instance.dict()).unwrap())),
        );
        group.bench_with_input(BenchmarkId::new("pres_compute", scale), &scale, |b, _| {
            b.iter(|| black_box(PartialResult::compute(&f.eq, &f.instance).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
