//! E10 — cube-catalog strategy selection: signature-indexed, cost-based
//! planning vs. the pre-refactor linear scan.
//!
//! Loads the ~100k-triple blogger world, materializes a 200-cube workload
//! spread over every (classifier body × measure × aggregate) family plus
//! Σ-diced variants, and times planning a probe set of independently-
//! written queries (renamed variables, reordered patterns, dice/drill-out/
//! drill-in shapes) two ways:
//!
//! * `plan_indexed_200` — [`OlapSession::explain_query`]: one `ViewKey`
//!   probe into the catalog index, classification + costing of that one
//!   candidate family;
//! * `plan_linear_200` — [`OlapSession::explain_query_linear`]: the
//!   pre-catalog behavior, re-canonicalizing every materialized cube's
//!   signatures per query and picking by the legacy fixed preference
//!   order.
//!
//! The roadmap acceptance bar is a ≥2× median speedup for the indexed
//! planner on this repeated-derivation workload.
//!
//! A separate `e10_smoke` group runs a miniature workload — including a
//! budgeted session exercising eviction + rehydration — with a minimal
//! sample budget; CI executes only that group to guard the bench against
//! bit-rot.

use criterion::{criterion_group, criterion_main, Criterion};
use rdfcube_bench::{catalog_fixture, catalog_fixture_with_budget};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = catalog_fixture(100_000, 200);

    let mut group = c.benchmark_group("e10_catalog");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("plan_indexed_200", |b| {
        b.iter(|| {
            for p in &f.probes {
                black_box(f.session.explain_query(p));
            }
        })
    });

    group.bench_function("plan_linear_200", |b| {
        b.iter(|| {
            for p in &f.probes {
                black_box(f.session.explain_query_linear(p));
            }
        })
    });

    group.finish();
}

fn smoke(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_smoke");
    group.sample_size(2);
    group.warm_up_time(std::time::Duration::from_millis(50));
    group.measurement_time(std::time::Duration::from_millis(200));

    let f = catalog_fixture(4_000, 20);
    group.bench_function("plan_both_20", |b| {
        b.iter(|| {
            for p in &f.probes {
                let fast = f.session.explain_query(p);
                let slow = f.session.explain_query_linear(p);
                // An indexed hit implies an applicable candidate exists, so
                // the legacy scan must hit too. (The converse is not true:
                // the cost model may legitimately reject every candidate
                // as more expensive than scratch.)
                assert!(
                    !fast.catalog_hit || slow.catalog_hit,
                    "indexed planner hit where the exhaustive scan missed"
                );
                black_box((fast, slow));
            }
        })
    });

    // Exercise the budgeted path end to end: answering under a tight
    // budget must evict, rehydrate, and still answer correctly (the
    // assertion guards runtime rot; correctness proper is property-tested
    // in the test suite).
    group.bench_function("budgeted_answer_20", |b| {
        b.iter(|| {
            let mut budgeted = catalog_fixture_with_budget(4_000, 20, Some(64 * 1024));
            let probes: Vec<_> = budgeted.probes.iter().take(6).cloned().collect();
            for p in probes {
                let (h, _) = budgeted.session.answer_query(p).expect("budgeted answer");
                black_box(budgeted.session.answer(h).len());
            }
            let cat = budgeted.session.catalog();
            assert!(
                cat.resident_bytes() <= cat.budget().unwrap() || cat.resident_len() == 1,
                "budget violated: {} resident bytes across {} cubes",
                cat.resident_bytes(),
                cat.resident_len(),
            );
            black_box(cat.counters())
        })
    });

    group.finish();
}

criterion_group!(benches, bench, smoke);
criterion_main!(benches);
